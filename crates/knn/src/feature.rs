//! KNN in arbitrary-dimensional feature space.
//!
//! DGCNN rebuilds its neighbor graph *per module*, searching in the output
//! feature space of the previous module rather than in 3-D coordinates
//! (paper §V-A: "the neighbor search in module i searches in the output
//! feature space of module i−1"). Feature dimensions reach 64–512, where a
//! kd-tree degenerates, so implementations — and our GPU cost model — use a
//! dense pairwise-distance computation. This module provides that search
//! over row-major feature matrices.

use crate::bruteforce::Candidate;
use crate::NeighborIndexTable;

/// A borrowed row-major `rows × dim` feature matrix.
///
/// # Example
///
/// ```
/// use mesorasi_knn::feature::FeatureView;
///
/// let data = [0.0, 0.0, 1.0, 0.0, 0.0, 3.0];
/// let view = FeatureView::new(&data, 3).expect("2 rows of dim 3");
/// assert_eq!(view.rows(), 2);
/// assert_eq!(view.row(1), &[0.0, 0.0, 3.0]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FeatureView<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> FeatureView<'a> {
    /// Wraps `data` as a matrix with `dim` columns.
    ///
    /// Returns `None` when `data.len()` is not a multiple of `dim` or `dim`
    /// is zero.
    pub fn new(data: &'a [f32], dim: usize) -> Option<Self> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return None;
        }
        Some(FeatureView { data, dim })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Feature dimension (columns).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Squared Euclidean distance between two equal-length vectors.
#[inline]
pub fn distance_squared(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// KNN over feature rows: for each query row index, the `k` rows nearest in
/// Euclidean distance (the query row itself is included and, at distance 0,
/// comes first). Ties break by row index.
///
/// # Panics
///
/// Panics if `k == 0`, `k > view.rows()`, or a query index is out of range.
pub fn knn_rows(view: FeatureView<'_>, queries: &[usize], k: usize) -> NeighborIndexTable {
    let mut out = NeighborIndexTable::default();
    knn_rows_into(view, queries, k, &mut out, &mut Vec::new());
    out
}

/// [`knn_rows`] writing into a caller-owned table, with caller-owned
/// candidate scratch for the sequential path. Produces identical tables to
/// [`knn_rows`] (the bounded selection visits rows in the same order) and
/// returns the number of distance evaluations (`rows × queries`).
///
/// # Panics
///
/// Panics if `k == 0`, `k > view.rows()`, or a query index is out of range.
pub fn knn_rows_into(
    view: FeatureView<'_>,
    queries: &[usize],
    k: usize,
    out: &mut NeighborIndexTable,
    scratch: &mut Vec<Candidate>,
) -> u64 {
    assert!(k > 0 && k <= view.rows(), "k = {k} out of range for {} rows", view.rows());
    let cost = view.rows() * view.dim() * 3;
    crate::kdtree::batch_into(out, queries, k, cost, scratch, |best, q, slot| {
        let qrow = view.row(q);
        best.clear();
        for i in 0..view.rows() {
            let c = Candidate { index: i, dist_sq: distance_squared(qrow, view.row(i)) };
            crate::bruteforce::push_bounded(best, k, c);
        }
        for (s, c) in slot.iter_mut().zip(best.iter()) {
            *s = c.index;
        }
        view.rows() as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_rejects_ragged_data() {
        assert!(FeatureView::new(&[1.0, 2.0, 3.0], 2).is_none());
        assert!(FeatureView::new(&[1.0, 2.0], 0).is_none());
        assert!(FeatureView::new(&[], 4).is_some());
    }

    #[test]
    fn knn_in_feature_space_finds_closest_rows() {
        // Rows: 0 at origin, 1 near origin, 2 far, 3 nearest to 2.
        let data = [
            0.0, 0.0, //
            0.1, 0.0, //
            5.0, 5.0, //
            5.0, 5.1, //
        ];
        let view = FeatureView::new(&data, 2).unwrap();
        let nit = knn_rows(view, &[0, 2], 2);
        assert_eq!(nit.neighbors(0), &[0, 1]);
        assert_eq!(nit.neighbors(1), &[2, 3]);
    }

    #[test]
    fn matches_3d_bruteforce_when_dim_is_3() {
        use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
        let cloud = sample_shape(ShapeClass::Vase, 128, 4);
        let flat = cloud.to_xyz_rows();
        let view = FeatureView::new(&flat, 3).unwrap();
        let queries: Vec<usize> = (0..128).step_by(11).collect();
        let a = knn_rows(view, &queries, 9);
        let b = crate::bruteforce::knn_indices(&cloud, &queries, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn knn_rows_into_matches_allocating_variant() {
        let data: Vec<f32> = (0..600).map(|i| ((i * 37) % 101) as f32 * 0.1).collect();
        let view = FeatureView::new(&data, 6).unwrap();
        let queries: Vec<usize> = (0..100).step_by(7).collect();
        let want = knn_rows(view, &queries, 5);
        let mut got = crate::NeighborIndexTable::default();
        let evals = knn_rows_into(view, &queries, 5, &mut got, &mut Vec::new());
        assert_eq!(got, want);
        assert!(evals > 0);
    }

    #[test]
    fn self_is_first_neighbor() {
        let data: Vec<f32> = (0..40).map(|i| i as f32).collect();
        let view = FeatureView::new(&data, 4).unwrap();
        let nit = knn_rows(view, &[3, 7], 3);
        assert_eq!(nit.neighbors(0)[0], 3);
        assert_eq!(nit.neighbors(1)[0], 7);
    }

    #[test]
    fn distance_squared_basic() {
        assert_eq!(distance_squared(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(distance_squared(&[], &[]), 0.0);
    }
}
