//! Neighbor search — the `N` operator of point-cloud modules.
//!
//! Unlike convolution, where neighbors are found by directly indexing a
//! regular tensor, point-cloud networks must *search* for neighbors because
//! points are irregularly scattered (paper §III-A). This crate provides the
//! search structures the evaluated networks use:
//!
//! * [`bruteforce`] — exact KNN by exhaustive distance computation, the
//!   reference implementation and the cost model the GPU simulator charges,
//! * [`kdtree`] — a kd-tree for fast exact KNN on the CPU (keeps the
//!   functional executors fast; the *simulated* GPU still uses the
//!   brute-force cost, which is what TX2 implementations do),
//! * [`ball`] — radius (ball) query with padding, PointNet++'s grouping,
//! * [`feature`] — KNN in arbitrary-dimensional feature space, used by
//!   DGCNN's dynamic graph construction,
//! * [`nit`] — the Neighbor Index Table, the `N_out × K` index structure
//!   that the delayed-aggregation hardware streams through the NIT buffer,
//! * [`index`] — the pluggable [`SearchIndex`] trait over every backend
//!   (explicit build/query split, out-parameter queries) and the
//!   [`SearchContext`] that owns reusable per-space index storage,
//! * [`planner`] — the cost-model [`SearchPlanner`] choosing a backend per
//!   workload shape (overridable via `MESORASI_SEARCH`),
//! * [`stats`] — neighborhood-membership statistics (reproduces Fig. 6)
//!   and the [`stats::SearchCounters`] traffic meters.
//!
//! Every backend is exact with identical `(distance, index)` tie-breaking,
//! so the planner's choice changes *where time goes*, never the results.
//!
//! # Example
//!
//! ```
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//! use mesorasi_knn::{bruteforce, kdtree::KdTree};
//!
//! let cloud = sample_shape(ShapeClass::Sphere, 256, 1);
//! let queries: Vec<usize> = (0..32).collect();
//! let exact = bruteforce::knn_indices(&cloud, &queries, 8);
//! let tree = KdTree::build(&cloud);
//! let fast = tree.knn_indices(&cloud, &queries, 8);
//! assert_eq!(exact.neighbors_flat(), fast.neighbors_flat());
//! ```

#![forbid(unsafe_code)]

pub mod ball;
pub mod bruteforce;
pub mod feature;
pub mod grid;
pub mod index;
pub mod kdtree;
pub mod nit;
pub mod planner;
pub mod stats;

pub use index::{SearchContext, SearchIndex};
pub use nit::NeighborIndexTable;
pub use planner::{SearchBackend, SearchPlanner};
