//! Neighbor search — the `N` operator of point-cloud modules.
//!
//! Unlike convolution, where neighbors are found by directly indexing a
//! regular tensor, point-cloud networks must *search* for neighbors because
//! points are irregularly scattered (paper §III-A). This crate provides the
//! search structures the evaluated networks use:
//!
//! * [`bruteforce`] — exact KNN by exhaustive distance computation, the
//!   reference implementation and the cost model the GPU simulator charges,
//! * [`kdtree`] — a kd-tree for fast exact KNN on the CPU (keeps the
//!   functional executors fast; the *simulated* GPU still uses the
//!   brute-force cost, which is what TX2 implementations do),
//! * [`ball`] — radius (ball) query with padding, PointNet++'s grouping,
//! * [`feature`] — KNN in arbitrary-dimensional feature space, used by
//!   DGCNN's dynamic graph construction,
//! * [`nit`] — the Neighbor Index Table, the `N_out × K` index structure
//!   that the delayed-aggregation hardware streams through the NIT buffer,
//! * [`stats`] — neighborhood-membership statistics (reproduces Fig. 6).
//!
//! # Example
//!
//! ```
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//! use mesorasi_knn::{bruteforce, kdtree::KdTree};
//!
//! let cloud = sample_shape(ShapeClass::Sphere, 256, 1);
//! let queries: Vec<usize> = (0..32).collect();
//! let exact = bruteforce::knn_indices(&cloud, &queries, 8);
//! let tree = KdTree::build(&cloud);
//! let fast = tree.knn_indices(&cloud, &queries, 8);
//! assert_eq!(exact.neighbors_flat(), fast.neighbors_flat());
//! ```

pub mod ball;
pub mod bruteforce;
pub mod feature;
pub mod grid;
pub mod kdtree;
pub mod nit;
pub mod stats;

pub use nit::NeighborIndexTable;

/// Shared batched-query driver: runs `entry_for(query)` for every query —
/// in parallel when the workload justifies it (`cost_per_query` is the
/// approximate per-query work in inner-loop operations) — and assembles the
/// results into a [`NeighborIndexTable`] in query order. Queries are
/// independent, so parallel and sequential execution produce identical
/// tables.
pub(crate) fn batch_entries(
    k: usize,
    queries: &[usize],
    cost_per_query: usize,
    entry_for: impl Fn(usize) -> Vec<usize> + Sync,
) -> NeighborIndexTable {
    let entries = mesorasi_par::par_map_collect_cost(queries, cost_per_query, |_, &q| entry_for(q));
    let mut nit = NeighborIndexTable::with_capacity(k, queries.len());
    for (&q, idx) in queries.iter().zip(&entries) {
        nit.push_entry(q, idx);
    }
    nit
}
