//! Neighbor search — the `N` operator of point-cloud modules.
//!
//! Unlike convolution, where neighbors are found by directly indexing a
//! regular tensor, point-cloud networks must *search* for neighbors because
//! points are irregularly scattered (paper §III-A). This crate provides the
//! search structures the evaluated networks use:
//!
//! * [`bruteforce`] — exact KNN by exhaustive distance computation, the
//!   reference implementation and the cost model the GPU simulator charges,
//! * [`kdtree`] — a kd-tree for fast exact KNN on the CPU (keeps the
//!   functional executors fast; the *simulated* GPU still uses the
//!   brute-force cost, which is what TX2 implementations do),
//! * [`ball`] — radius (ball) query with padding, PointNet++'s grouping,
//! * [`feature`] — KNN in arbitrary-dimensional feature space, used by
//!   DGCNN's dynamic graph construction,
//! * [`nit`] — the Neighbor Index Table, the `N_out × K` index structure
//!   that the delayed-aggregation hardware streams through the NIT buffer,
//! * [`index`] — the pluggable [`SearchIndex`] trait over every backend
//!   (explicit build/query split, out-parameter queries) and the
//!   [`SearchContext`] that owns reusable per-space index storage,
//! * [`octree`] — a Morton-bucket octree for large clouds, with LOD
//!   sampling and pageable leaf payloads,
//! * [`pager`] — the [`pager::NodeStore`] leaf-payload stores (resident
//!   and file-backed under a byte-budgeted LRU),
//! * [`planner`] — the cost-model [`SearchPlanner`] choosing a backend per
//!   workload shape (overridable via `MESORASI_SEARCH`),
//! * [`stats`] — neighborhood-membership statistics (reproduces Fig. 6)
//!   and the [`stats::SearchCounters`] traffic meters.
//!
//! Every backend is exact with identical `(distance, index)` tie-breaking,
//! so the planner's choice changes *where time goes*, never the results.
//!
//! # Example
//!
//! ```
//! use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
//! use mesorasi_knn::{bruteforce, kdtree::KdTree};
//!
//! let cloud = sample_shape(ShapeClass::Sphere, 256, 1);
//! let queries: Vec<usize> = (0..32).collect();
//! let exact = bruteforce::knn_indices(&cloud, &queries, 8);
//! let tree = KdTree::build(&cloud);
//! let fast = tree.knn_indices(&cloud, &queries, 8);
//! assert_eq!(exact.neighbors_flat(), fast.neighbors_flat());
//! ```

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

pub mod ball;
pub mod bruteforce;
pub mod feature;
pub mod grid;
pub mod index;
pub mod kdtree;
pub mod nit;
pub mod octree;
pub mod pager;
pub mod planner;
pub mod stats;

pub use index::{SearchContext, SearchIndex};
pub use nit::NeighborIndexTable;
pub use octree::MortonOctree;
pub use pager::{NodeStore, PagerStats};
pub use planner::{SearchBackend, SearchPlanner};

thread_local! {
    /// Ambient per-call override for the batch-query chunk size. `None`
    /// (the default) lets the cost model pick; `Some(b)` forces
    /// fixed-budget query tiles so the streaming engine's tile splitter
    /// controls chunk boundaries deterministically. Chunking never changes
    /// results (queries are independent), only where the work lands.
    static QUERY_TILE_BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` with the batch-query tile budget overridden to `budget`
/// (`None` restores cost-model chunking). Restores the previous value on
/// return or unwind, so overrides nest.
pub fn with_query_tile_budget<R>(budget: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            QUERY_TILE_BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(QUERY_TILE_BUDGET.with(|b| b.replace(budget)));
    f()
}

/// Current ambient tile budget (see [`with_query_tile_budget`]).
pub(crate) fn query_tile_budget() -> Option<usize> {
    QUERY_TILE_BUDGET.with(|b| b.get())
}

/// Per-worker candidate scratch for parallel batch queries. Keyed by
/// `mesorasi_par` worker slot, so a warm pool serves every chunk body
/// without touching the allocator — the zero-alloc streaming bar at
/// `MESORASI_THREADS > 1` rests on this.
pub(crate) fn candidate_pool() -> &'static mesorasi_par::ScratchPool<Vec<bruteforce::Candidate>> {
    static POOL: OnceLock<mesorasi_par::ScratchPool<Vec<bruteforce::Candidate>>> = OnceLock::new();
    POOL.get_or_init(mesorasi_par::ScratchPool::new)
}

/// Heap bytes retained by the per-worker parallel query scratch pool
/// (capacity across all idle slots). Surfaced through `EngineStats` so the
/// memory-ceiling contract covers parallel search.
pub fn parallel_scratch_bytes() -> usize {
    candidate_pool().measure_bytes(|v| v.capacity() * std::mem::size_of::<bruteforce::Candidate>())
}
