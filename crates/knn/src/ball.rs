//! Ball (radius) query with padding — PointNet++'s grouping operator.
//!
//! PointNet++ groups up to `K` points within a fixed radius of each
//! centroid. When a neighborhood holds fewer than `K` points, the first
//! found index is repeated to pad the group to exactly `K` (the original
//! implementation's behaviour). This padding is why Fig. 6's membership
//! counts can exceed what pure KNN would produce in dense regions.

use crate::kdtree::KdTree;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::PointCloud;

/// Writes the nearest `min(found.len(), k)` candidate indices into `slot`
/// (`k` wide), padding the remainder with the first index — the original
/// implementation's behaviour for sparse neighborhoods. `found` must be
/// sorted ascending.
pub(crate) fn pad_slot(found: &[crate::bruteforce::Candidate], slot: &mut [usize]) {
    debug_assert!(!found.is_empty(), "centroid always finds itself");
    let take = found.len().min(slot.len());
    for (s, c) in slot[..take].iter_mut().zip(found) {
        *s = c.index;
    }
    let pad = found[0].index;
    for s in &mut slot[take..] {
        *s = pad;
    }
}

/// Runs a padded ball query for every centroid in `queries`, in parallel
/// per query.
///
/// For each centroid, collects at most `k` points within `radius`
/// (ascending by distance; the centroid itself, at distance 0, is first) and
/// pads with the nearest found index up to exactly `k` entries. A centroid
/// always finds at least itself, so entries are never empty. A thin wrapper
/// over the same batch [`KdTree::ball_into`] runs, so the two paths cannot
/// diverge.
///
/// # Panics
///
/// Panics if `k == 0`, `radius < 0`, or a query index is out of bounds.
pub fn ball_query(
    cloud: &PointCloud,
    tree: &KdTree,
    queries: &[usize],
    radius: f32,
    k: usize,
) -> NeighborIndexTable {
    let mut out = NeighborIndexTable::default();
    tree.ball_batch(cloud, queries, radius, k, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
    use mesorasi_pointcloud::{Point3, PointCloud};

    #[test]
    fn sparse_region_pads_with_first_index() {
        // Two tight clusters far apart; querying a point in the small
        // cluster with a small radius must pad.
        let mut pts = vec![Point3::new(0.0, 0.0, 0.0), Point3::new(0.01, 0.0, 0.0)];
        for i in 0..30 {
            pts.push(Point3::new(10.0 + 0.01 * i as f32, 0.0, 0.0));
        }
        let cloud = PointCloud::from_points(pts);
        let tree = KdTree::build(&cloud);
        let nit = ball_query(&cloud, &tree, &[0], 0.5, 8);
        let n = nit.neighbors(0);
        assert_eq!(n[0], 0);
        assert_eq!(n[1], 1);
        // The remaining 6 slots are padded with index 0.
        assert!(n[2..].iter().all(|&i| i == 0));
    }

    #[test]
    fn dense_region_truncates_to_k_nearest() {
        let cloud = sample_shape(ShapeClass::Sphere, 512, 3);
        let tree = KdTree::build(&cloud);
        let nit = ball_query(&cloud, &tree, &[0], 2.5, 16); // radius covers everything
        let n = nit.neighbors(0);
        assert_eq!(n.len(), 16);
        // Must equal the 16 nearest by KNN.
        let knn = tree.knn_indices(&cloud, &[0], 16);
        assert_eq!(n, knn.neighbors(0));
    }

    #[test]
    fn centroid_is_always_first() {
        let cloud = sample_shape(ShapeClass::Table, 256, 1);
        let tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..256).step_by(31).collect();
        let nit = ball_query(&cloud, &tree, &queries, 0.2, 8);
        for (i, &q) in queries.iter().enumerate() {
            assert_eq!(nit.neighbors(i)[0], q);
        }
    }

    #[test]
    fn padding_inflates_membership_counts() {
        // The Fig. 6 effect: with padding, a point in a sparse region can
        // appear many times within one entry.
        let cloud = PointCloud::from_points(vec![Point3::ORIGIN, Point3::new(100.0, 0.0, 0.0)]);
        let tree = KdTree::build(&cloud);
        let nit = ball_query(&cloud, &tree, &[0], 1.0, 4);
        let occurrences = nit.neighbors(0).iter().filter(|&&i| i == 0).count();
        assert_eq!(occurrences, 4);
    }
}
