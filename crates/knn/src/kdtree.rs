//! A kd-tree for exact 3-D KNN and radius queries.
//!
//! The functional executors run neighbor search many times per network; the
//! kd-tree keeps that tractable on the CPU. Results are bit-identical to
//! [`crate::bruteforce`] (same distance metric, same index tie-breaking), so
//! either can back the executor — the simulator charges GPU brute-force
//! cost regardless of which structure produced the indices.

use crate::bruteforce::Candidate;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::{Point3, PointCloud};

/// Leaf size below which nodes stop splitting; 16 balances build and query
/// cost for the 1K–130K point clouds used here.
const LEAF_SIZE: usize = 16;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into the original cloud.
        points: Vec<usize>,
    },
    Split {
        axis: usize,
        value: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// An immutable kd-tree over a point cloud.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
/// use mesorasi_knn::kdtree::KdTree;
///
/// let cloud = sample_shape(ShapeClass::Torus, 512, 3);
/// let tree = KdTree::build(&cloud);
/// let nn = tree.knn(&cloud, cloud.point(7), 1);
/// assert_eq!(nn[0].index, 7); // a member point is its own nearest neighbor
/// ```
#[derive(Debug)]
pub struct KdTree {
    root: Node,
    size: usize,
}

impl KdTree {
    /// Builds a tree over `cloud` in O(n log² n).
    ///
    /// An empty cloud yields a tree whose queries panic (callers check).
    pub fn build(cloud: &PointCloud) -> Self {
        let mut indices: Vec<usize> = (0..cloud.len()).collect();
        let root = build_node(cloud.points(), &mut indices);
        KdTree { root, size: cloud.len() }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Exact `k` nearest neighbors of `query`, ascending by distance with
    /// index tie-breaking — identical ordering to the brute-force search.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > self.len()`.
    pub fn knn(&self, cloud: &PointCloud, query: Point3, k: usize) -> Vec<Candidate> {
        assert!(k > 0 && k <= self.size, "k = {k} out of range for {} points", self.size);
        let mut best: Vec<Candidate> = Vec::with_capacity(k + 1);
        search(&self.root, cloud.points(), query, k, &mut best);
        best
    }

    /// KNN for a batch of member-point queries, as a [`NeighborIndexTable`].
    /// Queries run in parallel (tree descent is read-only).
    pub fn knn_indices(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
    ) -> NeighborIndexTable {
        crate::batch_entries(k, queries, per_query_cost(self.size, k), |q| {
            self.knn(cloud, cloud.point(q), k).iter().map(|c| c.index).collect()
        })
    }

    /// All points within `radius` of `query`, ascending by distance.
    pub fn within_radius(&self, cloud: &PointCloud, query: Point3, radius: f32) -> Vec<Candidate> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut found = Vec::new();
        radius_search(&self.root, cloud.points(), query, radius * radius, &mut found);
        found.sort_by(|a, b| {
            (a.dist_sq, a.index).partial_cmp(&(b.dist_sq, b.index)).expect("distances are finite")
        });
        found
    }
}

/// Rough per-query work estimate for a tree descent — `O(k · log n)` leaf
/// scans plus backtracking — used to gate batch-query parallelism.
pub(crate) fn per_query_cost(size: usize, k: usize) -> usize {
    let depth = usize::BITS as usize - size.max(2).leading_zeros() as usize;
    LEAF_SIZE * depth * (k + 8)
}

fn build_node(points: &[Point3], indices: &mut [usize]) -> Node {
    if indices.len() <= LEAF_SIZE {
        return Node::Leaf { points: indices.to_vec() };
    }
    // Split on the widest axis at the median.
    let mut min = points[indices[0]];
    let mut max = min;
    for &i in indices.iter() {
        min = min.min(points[i]);
        max = max.max(points[i]);
    }
    let extent = max - min;
    let axis = if extent.x >= extent.y && extent.x >= extent.z {
        0
    } else if extent.y >= extent.z {
        1
    } else {
        2
    };
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        points[a][axis]
            .partial_cmp(&points[b][axis])
            .expect("coordinates are finite")
            .then(a.cmp(&b))
    });
    let value = points[indices[mid]][axis];
    let (left_idx, right_idx) = indices.split_at_mut(mid);
    let left = build_node(points, left_idx);
    let right = build_node(points, right_idx);
    Node::Split { axis, value, left: Box::new(left), right: Box::new(right) }
}

fn push_candidate(best: &mut Vec<Candidate>, k: usize, c: Candidate) {
    let key = |x: &Candidate| (x.dist_sq, x.index);
    if best.len() == k && key(&c) >= key(best.last().expect("non-empty")) {
        return;
    }
    let pos = best.partition_point(|b| key(b) < key(&c));
    best.insert(pos, c);
    if best.len() > k {
        best.pop();
    }
}

fn search(node: &Node, points: &[Point3], query: Point3, k: usize, best: &mut Vec<Candidate>) {
    match node {
        Node::Leaf { points: leaf } => {
            for &i in leaf {
                let d = points[i].distance_squared(query);
                push_candidate(best, k, Candidate { index: i, dist_sq: d });
            }
        }
        Node::Split { axis, value, left, right } => {
            let delta = query[*axis] - value;
            let (near, far) = if delta < 0.0 { (left, right) } else { (right, left) };
            search(near, points, query, k, best);
            // Visit the far side only if the splitting plane is closer than
            // the current k-th best (or we have fewer than k yet).
            let worst = best.last().map_or(f32::INFINITY, |c| c.dist_sq);
            if best.len() < k || delta * delta <= worst {
                search(far, points, query, k, best);
            }
        }
    }
}

fn radius_search(
    node: &Node,
    points: &[Point3],
    query: Point3,
    radius_sq: f32,
    found: &mut Vec<Candidate>,
) {
    match node {
        Node::Leaf { points: leaf } => {
            for &i in leaf {
                let d = points[i].distance_squared(query);
                if d <= radius_sq {
                    found.push(Candidate { index: i, dist_sq: d });
                }
            }
        }
        Node::Split { axis, value, left, right } => {
            let delta = query[*axis] - value;
            let (near, far) = if delta < 0.0 { (left, right) } else { (right, left) };
            radius_search(near, points, query, radius_sq, found);
            if delta * delta <= radius_sq {
                radius_search(far, points, query, radius_sq, found);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn matches_bruteforce_on_every_class_sample() {
        for (seed, class) in
            [(1, ShapeClass::Sphere), (2, ShapeClass::Chair), (3, ShapeClass::Airplane)]
        {
            let cloud = sample_shape(class, 300, seed);
            let tree = KdTree::build(&cloud);
            let queries: Vec<usize> = (0..300).step_by(7).collect();
            for k in [1, 4, 33] {
                let a = bruteforce::knn_indices(&cloud, &queries, k);
                let b = tree.knn_indices(&cloud, &queries, k);
                assert_eq!(a, b, "class {:?} k {k}", class);
            }
        }
    }

    #[test]
    fn radius_query_matches_filtering() {
        let cloud = sample_shape(ShapeClass::Lamp, 256, 5);
        let tree = KdTree::build(&cloud);
        let q = cloud.point(10);
        let r = 0.3f32;
        let got: Vec<usize> = tree.within_radius(&cloud, q, r).iter().map(|c| c.index).collect();
        let mut want: Vec<(f32, usize)> = cloud
            .points()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(q) <= r * r)
            .map(|(i, p)| (p.distance_squared(q), i))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<usize> = want.into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn radius_zero_returns_exact_matches_only() {
        let cloud = sample_shape(ShapeClass::Cube, 64, 5);
        let tree = KdTree::build(&cloud);
        let got = tree.within_radius(&cloud, cloud.point(3), 0.0);
        assert!(got.iter().any(|c| c.index == 3));
        assert!(got.iter().all(|c| c.dist_sq == 0.0));
    }

    #[test]
    fn small_cloud_is_single_leaf() {
        let cloud = sample_shape(ShapeClass::Cube, 8, 1);
        let tree = KdTree::build(&cloud);
        assert_eq!(tree.len(), 8);
        let nn = tree.knn(&cloud, cloud.point(0), 8);
        assert_eq!(nn.len(), 8);
    }

    #[test]
    fn duplicate_points_tie_break_by_index() {
        let cloud = PointCloud::from_points(vec![Point3::ORIGIN; 40]);
        let tree = KdTree::build(&cloud);
        let nn = tree.knn(&cloud, Point3::ORIGIN, 5);
        let idx: Vec<usize> = nn.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }
}
