//! A kd-tree for exact 3-D KNN and radius queries.
//!
//! The functional executors run neighbor search many times per network; the
//! kd-tree keeps that tractable on the CPU. Results are bit-identical to
//! [`crate::bruteforce`] (same distance metric, same index tie-breaking), so
//! either can back the executor — the simulator charges GPU brute-force
//! cost regardless of which structure produced the indices.
//!
//! The tree stores its nodes in a flat `Vec` (leaves reference ranges of a
//! single index permutation) so [`KdTree::build_into`] can rebuild over a
//! new cloud **in place**: same-sized clouds produce the same node layout,
//! so a streaming frame sequence rebuilds contents without touching the
//! allocator. The [`crate::index::SearchIndex`] implementation exposes the
//! build/query split to the planner.

use crate::bruteforce::{push_bounded, Candidate};
use crate::NeighborIndexTable;
use mesorasi_pointcloud::{Point3, PointCloud};

/// Leaf size below which nodes stop splitting; 16 balances build and query
/// cost for the 1K–130K point clouds used here.
const LEAF_SIZE: usize = 16;

/// One flat tree node. A split's left child is the next node in the vec
/// (pre-order layout); only the right child needs an explicit link.
#[derive(Debug, Clone, Copy)]
enum Node {
    Leaf {
        /// Range `start..start + len` of the items permutation.
        start: u32,
        /// Number of points in the leaf.
        len: u32,
    },
    Split {
        axis: u8,
        value: f32,
        right: u32,
    },
}

/// A kd-tree over a point cloud with reusable storage.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
/// use mesorasi_knn::kdtree::KdTree;
///
/// let cloud = sample_shape(ShapeClass::Torus, 512, 3);
/// let tree = KdTree::build(&cloud);
/// let nn = tree.knn(&cloud, cloud.point(7), 1);
/// assert_eq!(nn[0].index, 7); // a member point is its own nearest neighbor
/// ```
#[derive(Debug, Default)]
pub struct KdTree {
    nodes: Vec<Node>,
    /// Permutation of `0..size`; leaves own disjoint ranges of it.
    items: Vec<usize>,
    size: usize,
    /// Sequential-query candidate scratch (parallel chunks use their own).
    scratch: Vec<Candidate>,
}

impl KdTree {
    /// Builds a tree over `cloud` in O(n log² n).
    ///
    /// An empty cloud yields a tree whose queries panic (callers check).
    pub fn build(cloud: &PointCloud) -> Self {
        let mut tree = KdTree::default();
        tree.build_into(cloud);
        tree
    }

    /// Rebuilds the tree over `cloud`, reusing the node and permutation
    /// storage. Clouds of equal size produce identical node layouts, so
    /// rebuilding over a same-sized frame performs zero allocations once
    /// the buffers are warm.
    pub fn build_into(&mut self, cloud: &PointCloud) {
        assert!(cloud.len() <= u32::MAX as usize, "kd-tree indices are 32-bit");
        self.size = cloud.len();
        self.items.clear();
        self.items.extend(0..cloud.len());
        self.nodes.clear();
        if !self.items.is_empty() {
            let mut items = std::mem::take(&mut self.items);
            build_node(cloud.points(), &mut items, 0, &mut self.nodes);
            self.items = items;
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.size
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Heap bytes retained by the tree's storage (capacity, not length).
    pub fn storage_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.items.capacity() * std::mem::size_of::<usize>()
            + self.scratch.capacity() * std::mem::size_of::<Candidate>()
    }

    /// Exact `k` nearest neighbors of `query`, ascending by distance with
    /// index tie-breaking — identical ordering to the brute-force search.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > self.len()`.
    pub fn knn(&self, cloud: &PointCloud, query: Point3, k: usize) -> Vec<Candidate> {
        assert!(k > 0 && k <= self.size, "k = {k} out of range for {} points", self.size);
        let mut best: Vec<Candidate> = Vec::with_capacity(k + 1);
        let mut evals = 0u64;
        search(&self.nodes, &self.items, 0, cloud.points(), query, k, &mut best, &mut evals);
        best
    }

    /// KNN for a batch of member-point queries, as a [`NeighborIndexTable`].
    /// Queries run in parallel (tree descent is read-only). A thin wrapper
    /// over the same search [`KdTree::knn_into`] runs, so the two paths
    /// cannot diverge.
    pub fn knn_indices(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
    ) -> NeighborIndexTable {
        let mut out = NeighborIndexTable::default();
        self.knn_batch(cloud, queries, k, &mut Vec::new(), &mut out);
        out
    }

    /// [`KdTree::knn_indices`] writing into a caller-owned table (reset to
    /// `queries.len()` entries of `k`), reusing this tree's scratch on the
    /// sequential path. Returns the number of distance evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > self.len()`, or a query is out of bounds.
    pub fn knn_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        let KdTree { nodes, items, scratch, .. } = self;
        // Split borrows by hand: the scratch is a field of the same struct
        // the (immutable) tree data lives in.
        let tree = KdView { nodes, items, size: self.size };
        tree.knn_batch_inner(cloud, queries, k, scratch, out)
    }

    fn knn_batch(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        scratch: &mut Vec<Candidate>,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        KdView { nodes: &self.nodes, items: &self.items, size: self.size }
            .knn_batch_inner(cloud, queries, k, scratch, out)
    }

    /// Padded ball query (see [`crate::ball::ball_query`] for semantics)
    /// writing into a caller-owned table. Returns the number of distance
    /// evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `radius < 0`, or a query is out of bounds.
    pub fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        let KdTree { nodes, items, scratch, .. } = self;
        let tree = KdView { nodes, items, size: self.size };
        tree.ball_batch_inner(cloud, queries, radius, k, scratch, out)
    }

    /// [`KdTree::ball_into`] from a shared reference, with caller-owned
    /// scratch — what [`crate::ball::ball_query`] wraps.
    pub(crate) fn ball_batch(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        scratch: &mut Vec<Candidate>,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        KdView { nodes: &self.nodes, items: &self.items, size: self.size }
            .ball_batch_inner(cloud, queries, radius, k, scratch, out)
    }

    /// All points within `radius` of `query`, ascending by distance.
    pub fn within_radius(&self, cloud: &PointCloud, query: Point3, radius: f32) -> Vec<Candidate> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut found = Vec::new();
        let mut evals = 0u64;
        radius_search(
            &self.nodes,
            &self.items,
            0,
            cloud.points(),
            query,
            radius * radius,
            &mut found,
            &mut evals,
        );
        sort_candidates(&mut found);
        found
    }
}

/// Sorts candidates ascending by `(distance, index)`. The key is unique per
/// candidate (indices are distinct), so the unstable sort — which does not
/// allocate, unlike `sort_by` — is fully deterministic.
pub(crate) fn sort_candidates(found: &mut [Candidate]) {
    found.sort_unstable_by(|a, b| {
        (a.dist_sq, a.index).partial_cmp(&(b.dist_sq, b.index)).expect("distances are finite")
    });
}

/// Borrowed view of a tree's immutable search data, so the batch query
/// bodies exist exactly once whether scratch comes from the tree itself
/// (`&mut self` paths) or from the caller (`&self` wrappers).
struct KdView<'t> {
    nodes: &'t [Node],
    items: &'t [usize],
    size: usize,
}

impl KdView<'_> {
    fn knn_batch_inner(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        scratch: &mut Vec<Candidate>,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0 && k <= self.size, "k = {k} out of range for {} points", self.size);
        let (nodes, items) = (self.nodes, self.items);
        batch_into(out, queries, k, per_query_cost(self.size, k), scratch, |best, q, slot| {
            best.clear();
            let mut evals = 0u64;
            search(nodes, items, 0, cloud.points(), cloud.point(q), k, best, &mut evals);
            for (s, c) in slot.iter_mut().zip(best.iter()) {
                *s = c.index;
            }
            evals
        })
    }

    fn ball_batch_inner(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        scratch: &mut Vec<Candidate>,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0, "k must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let (nodes, items) = (self.nodes, self.items);
        let r2 = radius * radius;
        batch_into(out, queries, k, per_query_cost(self.size, k), scratch, |found, q, slot| {
            found.clear();
            let mut evals = 0u64;
            radius_search(nodes, items, 0, cloud.points(), cloud.point(q), r2, found, &mut evals);
            sort_candidates(found);
            crate::ball::pad_slot(found, slot);
            evals
        })
    }
}

/// Shared out-parameter batch driver for `&mut self` index queries: fills
/// `out` with one entry per query, running `per_query(scratch, query, slot)`
/// (which returns its distance-evaluation count) sequentially with the
/// caller's reusable scratch, or in parallel chunks with per-worker pooled
/// scratch when the workload justifies it. Entries are written in query
/// order and every `per_query` body resets its scratch before use, so both
/// paths — at any chunk size — produce identical tables.
///
/// An ambient [`crate::with_query_tile_budget`] override replaces the cost
/// model's chunk choice with fixed-budget query tiles (clamped to the batch
/// size); a budget covering the whole batch runs sequentially.
pub(crate) fn batch_into(
    out: &mut NeighborIndexTable,
    queries: &[usize],
    k: usize,
    cost_per_query: usize,
    scratch: &mut Vec<Candidate>,
    per_query: impl Fn(&mut Vec<Candidate>, usize, &mut [usize]) -> u64 + Sync,
) -> u64 {
    let entries = queries.len();
    let (cents, neighs) = out.fill_slots(k, entries);
    let chunk = match crate::query_tile_budget() {
        Some(budget) => budget.min(entries).max(1),
        None => mesorasi_par::chunk_len(entries, cost_per_query),
    };
    if chunk >= entries {
        let mut evals = 0u64;
        for (i, &q) in queries.iter().enumerate() {
            cents[i] = q;
            evals += per_query(scratch, q, &mut neighs[i * k..(i + 1) * k]);
        }
        evals
    } else {
        let total = std::sync::atomic::AtomicU64::new(0);
        mesorasi_par::par_chunks_mut_pair(cents, neighs, chunk, chunk * k, |ci, cc, nc| {
            crate::candidate_pool().with(|local| {
                let mut evals = 0u64;
                for (j, cent) in cc.iter_mut().enumerate() {
                    let q = queries[ci * chunk + j];
                    *cent = q;
                    evals += per_query(local, q, &mut nc[j * k..(j + 1) * k]);
                }
                total.fetch_add(evals, std::sync::atomic::Ordering::Relaxed);
            });
        });
        total.into_inner()
    }
}

/// Rough per-query work estimate for a tree descent — `O(k · log n)` leaf
/// scans plus backtracking — used to gate batch-query parallelism.
pub(crate) fn per_query_cost(size: usize, k: usize) -> usize {
    let depth = usize::BITS as usize - size.max(2).leading_zeros() as usize;
    LEAF_SIZE * depth * (k + 8)
}

fn build_node(points: &[Point3], items: &mut [usize], base: u32, nodes: &mut Vec<Node>) {
    if items.len() <= LEAF_SIZE {
        nodes.push(Node::Leaf { start: base, len: items.len() as u32 });
        return;
    }
    // Split on the widest axis at the median.
    let mut min = points[items[0]];
    let mut max = min;
    for &i in items.iter() {
        min = min.min(points[i]);
        max = max.max(points[i]);
    }
    let extent = max - min;
    let axis = if extent.x >= extent.y && extent.x >= extent.z {
        0
    } else if extent.y >= extent.z {
        1
    } else {
        2
    };
    let mid = items.len() / 2;
    items.select_nth_unstable_by(mid, |&a, &b| {
        points[a][axis]
            .partial_cmp(&points[b][axis])
            .expect("coordinates are finite")
            .then(a.cmp(&b))
    });
    let value = points[items[mid]][axis];
    let me = nodes.len();
    nodes.push(Node::Split { axis: axis as u8, value, right: 0 });
    let (left, right) = items.split_at_mut(mid);
    build_node(points, left, base, nodes);
    let right_at = nodes.len() as u32;
    let Node::Split { right: r, .. } = &mut nodes[me] else { unreachable!("pushed above") };
    *r = right_at;
    build_node(points, right, base + mid as u32, nodes);
}

#[allow(clippy::too_many_arguments)]
fn search(
    nodes: &[Node],
    items: &[usize],
    at: usize,
    points: &[Point3],
    query: Point3,
    k: usize,
    best: &mut Vec<Candidate>,
    evals: &mut u64,
) {
    match nodes[at] {
        Node::Leaf { start, len } => {
            for &i in &items[start as usize..(start + len) as usize] {
                let d = points[i].distance_squared(query);
                *evals += 1;
                push_bounded(best, k, Candidate { index: i, dist_sq: d });
            }
        }
        Node::Split { axis, value, right } => {
            let delta = query[axis as usize] - value;
            let (near, far) =
                if delta < 0.0 { (at + 1, right as usize) } else { (right as usize, at + 1) };
            search(nodes, items, near, points, query, k, best, evals);
            // Visit the far side only if the splitting plane is closer than
            // the current k-th best (or we have fewer than k yet).
            let worst = best.last().map_or(f32::INFINITY, |c| c.dist_sq);
            if best.len() < k || delta * delta <= worst {
                search(nodes, items, far, points, query, k, best, evals);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn radius_search(
    nodes: &[Node],
    items: &[usize],
    at: usize,
    points: &[Point3],
    query: Point3,
    radius_sq: f32,
    found: &mut Vec<Candidate>,
    evals: &mut u64,
) {
    match nodes[at] {
        Node::Leaf { start, len } => {
            for &i in &items[start as usize..(start + len) as usize] {
                let d = points[i].distance_squared(query);
                *evals += 1;
                if d <= radius_sq {
                    found.push(Candidate { index: i, dist_sq: d });
                }
            }
        }
        Node::Split { axis, value, right } => {
            let delta = query[axis as usize] - value;
            let (near, far) =
                if delta < 0.0 { (at + 1, right as usize) } else { (right as usize, at + 1) };
            radius_search(nodes, items, near, points, query, radius_sq, found, evals);
            if delta * delta <= radius_sq {
                radius_search(nodes, items, far, points, query, radius_sq, found, evals);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn matches_bruteforce_on_every_class_sample() {
        for (seed, class) in
            [(1, ShapeClass::Sphere), (2, ShapeClass::Chair), (3, ShapeClass::Airplane)]
        {
            let cloud = sample_shape(class, 300, seed);
            let tree = KdTree::build(&cloud);
            let queries: Vec<usize> = (0..300).step_by(7).collect();
            for k in [1, 4, 33] {
                let a = bruteforce::knn_indices(&cloud, &queries, k);
                let b = tree.knn_indices(&cloud, &queries, k);
                assert_eq!(a, b, "class {:?} k {k}", class);
            }
        }
    }

    #[test]
    fn knn_into_matches_allocating_path_and_counts_evals() {
        let cloud = sample_shape(ShapeClass::Guitar, 220, 4);
        let mut tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..220).step_by(3).collect();
        let mut out = NeighborIndexTable::default();
        let evals = tree.knn_into(&cloud, &queries, 9, &mut out);
        assert_eq!(out, tree.knn_indices(&cloud, &queries, 9));
        assert!(evals > 0, "descents must evaluate distances");
        assert!(evals <= (cloud.len() * queries.len()) as u64, "never worse than brute force");
    }

    #[test]
    fn build_into_reuses_storage_across_same_sized_clouds() {
        let a = sample_shape(ShapeClass::Chair, 256, 1);
        let b = sample_shape(ShapeClass::Lamp, 256, 2);
        let mut tree = KdTree::build(&a);
        let bytes = tree.storage_bytes();
        tree.build_into(&b);
        assert_eq!(tree.storage_bytes(), bytes, "same-sized rebuild must not grow storage");
        // Rebuilt contents answer for the new cloud.
        let queries: Vec<usize> = (0..256).step_by(13).collect();
        assert_eq!(tree.knn_indices(&b, &queries, 5), bruteforce::knn_indices(&b, &queries, 5));
    }

    #[test]
    fn ball_into_matches_ball_query() {
        let cloud = sample_shape(ShapeClass::Lamp, 180, 6);
        let mut tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..180).step_by(5).collect();
        let want = crate::ball::ball_query(&cloud, &tree, &queries, 0.3, 8);
        let mut got = NeighborIndexTable::default();
        tree.ball_into(&cloud, &queries, 0.3, 8, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn radius_query_matches_filtering() {
        let cloud = sample_shape(ShapeClass::Lamp, 256, 5);
        let tree = KdTree::build(&cloud);
        let q = cloud.point(10);
        let r = 0.3f32;
        let got: Vec<usize> = tree.within_radius(&cloud, q, r).iter().map(|c| c.index).collect();
        let mut want: Vec<(f32, usize)> = cloud
            .points()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_squared(q) <= r * r)
            .map(|(i, p)| (p.distance_squared(q), i))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want: Vec<usize> = want.into_iter().map(|(_, i)| i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn radius_zero_returns_exact_matches_only() {
        let cloud = sample_shape(ShapeClass::Cube, 64, 5);
        let tree = KdTree::build(&cloud);
        let got = tree.within_radius(&cloud, cloud.point(3), 0.0);
        assert!(got.iter().any(|c| c.index == 3));
        assert!(got.iter().all(|c| c.dist_sq == 0.0));
    }

    #[test]
    fn small_cloud_is_single_leaf() {
        let cloud = sample_shape(ShapeClass::Cube, 8, 1);
        let tree = KdTree::build(&cloud);
        assert_eq!(tree.len(), 8);
        let nn = tree.knn(&cloud, cloud.point(0), 8);
        assert_eq!(nn.len(), 8);
    }

    #[test]
    fn tile_budget_chunking_is_bit_identical() {
        let cloud = sample_shape(ShapeClass::Chair, 400, 9);
        let mut tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..400).collect();
        let mut want = NeighborIndexTable::default();
        tree.knn_into(&cloud, &queries, 8, &mut want);
        for budget in [1, 7, 64, 400, 401] {
            let mut got = NeighborIndexTable::default();
            crate::with_query_tile_budget(Some(budget), || {
                mesorasi_par::with_threads(4, || tree.knn_into(&cloud, &queries, 8, &mut got))
            });
            assert_eq!(got, want, "budget {budget}");
        }
        // The override restores on exit: cost-model chunking answers again.
        let mut after = NeighborIndexTable::default();
        tree.knn_into(&cloud, &queries, 8, &mut after);
        assert_eq!(after, want);
    }

    #[test]
    fn parallel_queries_retain_pooled_scratch() {
        let cloud = sample_shape(ShapeClass::Sphere, 1024, 2);
        let mut tree = KdTree::build(&cloud);
        let queries: Vec<usize> = (0..1024).collect();
        let mut out = NeighborIndexTable::default();
        crate::with_query_tile_budget(Some(64), || {
            mesorasi_par::with_threads(2, || tree.knn_into(&cloud, &queries, 16, &mut out))
        });
        assert!(crate::parallel_scratch_bytes() > 0, "parallel chunks must use the pool");
    }

    #[test]
    fn duplicate_points_tie_break_by_index() {
        let cloud = PointCloud::from_points(vec![Point3::ORIGIN; 40]);
        let tree = KdTree::build(&cloud);
        let nn = tree.knn(&cloud, Point3::ORIGIN, 5);
        let idx: Vec<usize> = nn.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
    }
}
