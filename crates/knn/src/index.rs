//! The pluggable search subsystem: one trait over every backend, plus the
//! [`SearchContext`] that owns reusable index storage.
//!
//! Mesorasi treats neighbor search as a first-class phase — delayed
//! aggregation exists precisely to decouple it from feature computation —
//! so the executors should not hard-code one structure. [`SearchIndex`]
//! makes the build/query split explicit: `build_into` (re)constructs an
//! index over a cloud reusing its storage, and the `*_into` queries write
//! into a caller-owned [`NeighborIndexTable`]. Every implementation is
//! **exact** with identical `(distance, index)` tie-breaking, so backends
//! are interchangeable bit-for-bit and the [`crate::planner::SearchPlanner`]
//! picks purely on predicted cost.
//!
//! [`SearchContext`] adds the arena discipline on top: a small pool of
//! keyed slots, each holding one built index plus a verification copy of
//! its cloud. Within a forward pass, every module searching the same
//! `(cloud, space)` shares one index; across a frame sequence, slots are
//! rebuilt *in place* (capacity reused, contents replaced), so a warm
//! stream performs zero heap allocations in the search phase. The context
//! also meters its traffic ([`SearchCounters`]): index-build vs query time
//! and real distance-evaluation counts.

use crate::bruteforce::{push_bounded, Candidate};
use crate::feature::{self, FeatureView};
use crate::grid::UniformGrid;
use crate::kdtree::{batch_into, sort_candidates, KdTree};
use crate::octree::MortonOctree;
use crate::pager::PagerStats;
use crate::planner::{SearchBackend, SearchLoad, SearchPlanner};
use crate::stats::SearchCounters;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::PointCloud;
use std::time::Instant;

/// A neighbor-search index with an explicit build/query split.
///
/// Implementations must be exact and deterministic: for any cloud and
/// query batch, `knn_into` and `ball_into` produce tables bit-identical to
/// [`crate::bruteforce::knn_indices`] / [`crate::ball::ball_query`] — the
/// correctness bar that lets the planner switch backends freely. Queries
/// take `&mut self` so indices can own reusable scratch; they never change
/// query results. Both query methods return the number of pairwise
/// distance evaluations performed (the traffic counters' currency).
pub trait SearchIndex: Send + std::fmt::Debug {
    /// Builds a fresh index over `cloud`.
    fn build(cloud: &PointCloud) -> Self
    where
        Self: Sized + Default,
    {
        let mut index = Self::default();
        index.build_into(cloud);
        index
    }

    /// Rebuilds the index over `cloud`, reusing storage where possible —
    /// same-sized clouds must not grow the backing allocations.
    fn build_into(&mut self, cloud: &PointCloud);

    /// Exact kNN for member-point `queries`, written into `out` (reset to
    /// `queries.len()` entries of `k`, ascending by distance, ties by
    /// index). Returns the distance evaluations performed.
    fn knn_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64;

    /// Padded radius query (see [`crate::ball::ball_query`] semantics)
    /// written into `out`. Returns the distance evaluations performed.
    fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64;

    /// Heap bytes retained by the index (capacity, not length).
    fn storage_bytes(&self) -> usize;

    /// Which planner backend this index implements.
    fn kind(&self) -> SearchBackend;
}

impl SearchIndex for KdTree {
    fn build_into(&mut self, cloud: &PointCloud) {
        KdTree::build_into(self, cloud);
    }

    fn knn_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        KdTree::knn_into(self, cloud, queries, k, out)
    }

    fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        KdTree::ball_into(self, cloud, queries, radius, k, out)
    }

    fn storage_bytes(&self) -> usize {
        KdTree::storage_bytes(self)
    }

    fn kind(&self) -> SearchBackend {
        SearchBackend::KdTree
    }
}

impl SearchIndex for UniformGrid {
    /// # Panics
    ///
    /// Panics unless [`UniformGrid::set_cell_size`] was called first — the
    /// grid's resolution is configuration, not derivable from the cloud.
    fn build_into(&mut self, cloud: &PointCloud) {
        UniformGrid::build_into(self, cloud);
    }

    /// The grid cannot answer kNN exactly (a neighborhood may extend past
    /// the scanned cells); the planner never routes kNN here.
    fn knn_into(
        &mut self,
        _cloud: &PointCloud,
        _queries: &[usize],
        _k: usize,
        _out: &mut NeighborIndexTable,
    ) -> u64 {
        panic!("the uniform grid serves radius (ball) queries only; plan kNN on another backend");
    }

    fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        UniformGrid::ball_into(self, cloud, queries, radius, k, out)
    }

    fn storage_bytes(&self) -> usize {
        UniformGrid::storage_bytes(self)
    }

    fn kind(&self) -> SearchBackend {
        SearchBackend::Grid
    }
}

/// The index-free backend: exhaustive scans, the reference every other
/// backend is tested against and the algorithm whose cost the GPU model
/// charges. `build_into` is a no-op (there is nothing to build), which is
/// exactly why the planner picks it for small workloads.
#[derive(Debug, Default)]
pub struct BruteForceIndex {
    scratch: Vec<Candidate>,
}

impl SearchIndex for BruteForceIndex {
    fn build_into(&mut self, _cloud: &PointCloud) {}

    fn knn_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0 && k <= cloud.len(), "k = {k} out of range for {} points", cloud.len());
        let n = cloud.len();
        batch_into(out, queries, k, n * 8, &mut self.scratch, |best, q, slot| {
            let query = cloud.point(q);
            best.clear();
            for (i, &p) in cloud.points().iter().enumerate() {
                push_bounded(best, k, Candidate { index: i, dist_sq: p.distance_squared(query) });
            }
            for (s, c) in slot.iter_mut().zip(best.iter()) {
                *s = c.index;
            }
            n as u64
        })
    }

    fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0, "k must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let n = cloud.len();
        let r2 = radius * radius;
        batch_into(out, queries, k, n * 8, &mut self.scratch, |found, q, slot| {
            let query = cloud.point(q);
            found.clear();
            for (i, &p) in cloud.points().iter().enumerate() {
                let d = p.distance_squared(query);
                if d <= r2 {
                    found.push(Candidate { index: i, dist_sq: d });
                }
            }
            sort_candidates(found);
            crate::ball::pad_slot(found, slot);
            n as u64
        })
    }

    fn storage_bytes(&self) -> usize {
        self.scratch.capacity() * std::mem::size_of::<Candidate>()
    }

    fn kind(&self) -> SearchBackend {
        SearchBackend::BruteForce
    }
}

/// The feature-space backend: dense row scans over an owned row-major
/// feature buffer (DGCNN's dynamic-graph search; spatial structures
/// degenerate at feature dimensionality, so brute force is the planner's
/// only choice there). As a [`SearchIndex`] over clouds it treats xyz as a
/// 3-wide feature matrix; the engine's feature searches borrow arbitrary
/// rows via [`FeatureBrute::knn_view_into`] instead.
#[derive(Debug, Default)]
pub struct FeatureBrute {
    rows: Vec<f32>,
    dim: usize,
    scratch: Vec<Candidate>,
}

impl FeatureBrute {
    /// kNN over a borrowed feature matrix, reusing this backend's scratch.
    /// Returns the distance evaluations performed.
    pub fn knn_view_into(
        &mut self,
        view: FeatureView<'_>,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        feature::knn_rows_into(view, queries, k, out, &mut self.scratch)
    }
}

impl SearchIndex for FeatureBrute {
    fn build_into(&mut self, cloud: &PointCloud) {
        self.dim = 3;
        self.rows.clear();
        for p in cloud.points() {
            self.rows.extend_from_slice(&p.to_array());
        }
    }

    fn knn_into(
        &mut self,
        _cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        let FeatureBrute { rows, dim, scratch } = self;
        let view = FeatureView::new(rows, *dim).expect("row buffer is rectangular");
        feature::knn_rows_into(view, queries, k, out, scratch)
    }

    fn ball_into(
        &mut self,
        _cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0, "k must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let FeatureBrute { rows, dim, scratch } = self;
        let view = FeatureView::new(rows, *dim).expect("row buffer is rectangular");
        let n = view.rows();
        let r2 = radius * radius;
        let cost = n * (*dim).max(1) * 3;
        batch_into(out, queries, k, cost, scratch, |found, q, slot| {
            let qrow = view.row(q);
            found.clear();
            for i in 0..n {
                let d = feature::distance_squared(qrow, view.row(i));
                if d <= r2 {
                    found.push(Candidate { index: i, dist_sq: d });
                }
            }
            sort_candidates(found);
            crate::ball::pad_slot(found, slot);
            n as u64
        })
    }

    fn storage_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<f32>()
            + self.scratch.capacity() * std::mem::size_of::<Candidate>()
    }

    fn kind(&self) -> SearchBackend {
        SearchBackend::BruteForce
    }
}

/// Indices a context keeps per slot (the stateless brute-force backends
/// live outside the slot pool — they have nothing worth caching).
#[derive(Debug)]
enum SlotIndex {
    Kd(KdTree),
    Grid(UniformGrid),
    // Boxed: the octree struct is ~3.5× the next-largest variant, and
    // boxing keeps every pooled slot small when it holds a kd/grid index.
    Octree(Box<MortonOctree>),
}

impl SlotIndex {
    fn storage_bytes(&self) -> usize {
        match self {
            SlotIndex::Kd(t) => t.storage_bytes(),
            SlotIndex::Grid(g) => g.storage_bytes(),
            SlotIndex::Octree(t) => SearchIndex::storage_bytes(&**t),
        }
    }
}

/// One cached index: the key it answers for, a verification copy of the
/// indexed cloud, and the structure itself.
#[derive(Debug)]
struct Slot {
    /// Caller-chosen space id (the engine uses module-state ids, the tape
    /// runner uses cloud content hashes).
    space: u64,
    backend: SearchBackend,
    /// Grid resolution discriminator (`radius.to_bits()`; 0 for kd slots).
    radius_bits: u32,
    /// Bit-exact copy of the indexed cloud: a slot only answers when its
    /// copy matches the query cloud, so stale or colliding keys can never
    /// produce a wrong table — at worst they trigger a rebuild.
    cloud: PointCloud,
    last_use: u64,
    index: SlotIndex,
}

/// Slots a context retains before evicting least-recently-used ones. Large
/// enough for every space a single network forward touches (the deepest
/// network here searches ~6 distinct (cloud, radius) combinations).
const MAX_SLOTS: usize = 16;

/// A planning search front-end with reusable per-space index storage.
///
/// Callers address searches by a `space` id of their choosing; the context
/// plans a backend, (re)builds the index for that space only when the
/// cloud's content changed, and answers into a caller-owned table. See the
/// module docs for the sharing and reuse discipline.
#[derive(Debug)]
pub struct SearchContext {
    planner: SearchPlanner,
    counters: SearchCounters,
    brute: BruteForceIndex,
    feature: FeatureBrute,
    slots: Vec<Slot>,
    clock: u64,
    /// Fixed query-tile budget applied to every batch query through this
    /// context (see [`crate::with_query_tile_budget`]); `None` defers to
    /// the cost model. Never changes results, only chunk boundaries.
    tile_budget: Option<usize>,
    /// LOD level for octree queries (`0` = exact, the default). Applied to
    /// every octree slot at query time; other backends ignore it.
    lod: usize,
    /// Octree leaf-payload residency budget: `None` keeps payloads
    /// resident, `Some(bytes)` pages them through a file-backed LRU.
    /// Results are bit-identical either way.
    pager_budget: Option<usize>,
}

impl Default for SearchContext {
    fn default() -> Self {
        SearchContext::new()
    }
}

impl SearchContext {
    /// A context planning via `MESORASI_SEARCH` / the cost model.
    pub fn new() -> SearchContext {
        SearchContext::with_planner(SearchPlanner::from_env())
    }

    /// A context with an explicit planner (session builder override).
    pub fn with_planner(planner: SearchPlanner) -> SearchContext {
        SearchContext {
            planner,
            counters: SearchCounters::default(),
            brute: BruteForceIndex::default(),
            feature: FeatureBrute::default(),
            slots: Vec::with_capacity(MAX_SLOTS),
            clock: 0,
            tile_budget: None,
            lod: 0,
            pager_budget: crate::pager::budget_from_env(),
        }
    }

    /// The planner deciding this context's backends.
    pub fn planner(&self) -> &SearchPlanner {
        &self.planner
    }

    /// Forces every batch query through fixed-size query tiles of `budget`
    /// points (`None` restores cost-model chunking). Tiling is a
    /// scheduling knob: results stay bit-identical at every budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget` is `Some(0)`.
    pub fn set_tile_budget(&mut self, budget: Option<usize>) {
        assert!(budget != Some(0), "tile budget must be positive");
        self.tile_budget = budget;
    }

    /// The fixed query-tile budget, if one is set.
    pub fn tile_budget(&self) -> Option<usize> {
        self.tile_budget
    }

    /// Sets the LOD level for octree queries: `0` (the default) answers
    /// exactly; level `ℓ ≥ 1` scans per-node representative subsamples at
    /// depth `ℓ` instead of descending further — approximate, but cheaper
    /// (see [`MortonOctree::set_lod`]). Other backends ignore the knob.
    pub fn set_lod(&mut self, lod: usize) {
        self.lod = lod;
    }

    /// The octree LOD level (see [`SearchContext::set_lod`]).
    pub fn lod(&self) -> usize {
        self.lod
    }

    /// Sets the octree leaf-payload residency budget: `None` (the default,
    /// unless `MESORASI_PAGER_BUDGET` says otherwise) keeps payloads
    /// resident; `Some(bytes)` pages them through a file-backed LRU under
    /// that budget. Results are bit-identical at every budget. Existing
    /// octree slots are dropped so the next query rebuilds onto the new
    /// store.
    pub fn set_pager_budget(&mut self, budget: Option<usize>) {
        if self.pager_budget != budget {
            self.pager_budget = budget;
            self.slots.retain(|s| !matches!(s.index, SlotIndex::Octree(_)));
        }
    }

    /// The octree pager budget (see [`SearchContext::set_pager_budget`]).
    pub fn pager_budget(&self) -> Option<usize> {
        self.pager_budget
    }

    /// Pager traffic counters summed over every octree slot (all-zero when
    /// no octree has answered or payloads are resident).
    pub fn pager_stats(&self) -> PagerStats {
        let mut total = PagerStats::default();
        for s in &self.slots {
            if let SlotIndex::Octree(t) = &s.index {
                total.add(&t.pager_stats());
            }
        }
        total
    }

    /// Traffic counters accumulated since construction.
    pub fn counters(&self) -> SearchCounters {
        self.counters
    }

    /// Heap bytes retained by every cached index, verification cloud, and
    /// scratch buffer — the search half of the engine's arena statistics.
    pub fn storage_bytes(&self) -> usize {
        self.slots.iter().map(|s| s.index.storage_bytes() + s.cloud.storage_bytes()).sum::<usize>()
            + self.brute.storage_bytes()
            + self.feature.storage_bytes()
    }

    /// Exact kNN for `queries` against `cloud`, on the planned backend,
    /// written into `out`. `space` identifies the search space for index
    /// sharing (same space + unchanged cloud ⇒ no rebuild).
    pub fn knn_into(
        &mut self,
        space: u64,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) {
        match self.tile_budget {
            Some(b) => crate::with_query_tile_budget(Some(b), || {
                self.knn_into_inner(space, cloud, queries, k, out)
            }),
            None => self.knn_into_inner(space, cloud, queries, k, out),
        }
    }

    fn knn_into_inner(
        &mut self,
        space: u64,
        cloud: &PointCloud,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) {
        let load = SearchLoad { n: cloud.len(), queries: queries.len(), k };
        match self.planner.plan_knn(&load) {
            SearchBackend::BruteForce => {
                let start = Instant::now();
                let evals = self.brute.knn_into(cloud, queries, k, out);
                self.note_query(queries.len(), evals, start);
            }
            SearchBackend::KdTree | SearchBackend::Grid => {
                let si = self.ensure_slot(space, SearchBackend::KdTree, 0.0, cloud);
                let start = Instant::now();
                let SlotIndex::Kd(tree) = &mut self.slots[si].index else {
                    unreachable!("kd slots hold kd-trees")
                };
                let evals = tree.knn_into(cloud, queries, k, out);
                self.note_query(queries.len(), evals, start);
            }
            SearchBackend::Octree => {
                let si = self.ensure_slot(space, SearchBackend::Octree, 0.0, cloud);
                let start = Instant::now();
                let SlotIndex::Octree(tree) = &mut self.slots[si].index else {
                    unreachable!("octree slots hold octrees")
                };
                tree.set_lod(self.lod);
                let evals = tree.knn_into(cloud, queries, k, out);
                self.note_query(queries.len(), evals, start);
            }
        }
    }

    /// Padded radius query for `queries` against `cloud`, on the planned
    /// backend, written into `out`.
    pub fn ball_into(
        &mut self,
        space: u64,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) {
        match self.tile_budget {
            Some(b) => crate::with_query_tile_budget(Some(b), || {
                self.ball_into_inner(space, cloud, queries, radius, k, out)
            }),
            None => self.ball_into_inner(space, cloud, queries, radius, k, out),
        }
    }

    fn ball_into_inner(
        &mut self,
        space: u64,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) {
        let load = SearchLoad { n: cloud.len(), queries: queries.len(), k };
        match self.planner.plan_ball(&load, radius) {
            SearchBackend::BruteForce => {
                let start = Instant::now();
                let evals = self.brute.ball_into(cloud, queries, radius, k, out);
                self.note_query(queries.len(), evals, start);
            }
            SearchBackend::KdTree => {
                let si = self.ensure_slot(space, SearchBackend::KdTree, 0.0, cloud);
                let start = Instant::now();
                let SlotIndex::Kd(tree) = &mut self.slots[si].index else {
                    unreachable!("kd slots hold kd-trees")
                };
                let evals = tree.ball_into(cloud, queries, radius, k, out);
                self.note_query(queries.len(), evals, start);
            }
            SearchBackend::Grid => {
                let si = self.ensure_slot(space, SearchBackend::Grid, radius, cloud);
                let start = Instant::now();
                let SlotIndex::Grid(grid) = &mut self.slots[si].index else {
                    unreachable!("grid slots hold grids")
                };
                let evals = grid.ball_into(cloud, queries, radius, k, out);
                self.note_query(queries.len(), evals, start);
            }
            SearchBackend::Octree => {
                let si = self.ensure_slot(space, SearchBackend::Octree, 0.0, cloud);
                let start = Instant::now();
                let SlotIndex::Octree(tree) = &mut self.slots[si].index else {
                    unreachable!("octree slots hold octrees")
                };
                tree.set_lod(self.lod);
                let evals = tree.ball_into(cloud, queries, radius, k, out);
                self.note_query(queries.len(), evals, start);
            }
        }
    }

    /// Feature-space kNN over a borrowed row matrix (always the dense
    /// scan), written into `out`.
    pub fn feature_knn_into(
        &mut self,
        view: FeatureView<'_>,
        queries: &[usize],
        k: usize,
        out: &mut NeighborIndexTable,
    ) {
        let start = Instant::now();
        let feature = &mut self.feature;
        let evals = match self.tile_budget {
            Some(b) => crate::with_query_tile_budget(Some(b), || {
                feature.knn_view_into(view, queries, k, out)
            }),
            None => feature.knn_view_into(view, queries, k, out),
        };
        self.note_query(queries.len(), evals, start);
    }

    /// A fresh octree on the configured leaf store (resident, or paged
    /// under [`SearchContext::pager_budget`]).
    fn new_octree(&self) -> Box<MortonOctree> {
        Box::new(match self.pager_budget {
            Some(budget) => MortonOctree::paged(budget),
            None => MortonOctree::resident(),
        })
    }

    fn note_query(&mut self, queries: usize, evals: u64, start: Instant) {
        self.counters.query_calls += 1;
        self.counters.queries += queries as u64;
        self.counters.query_ns += start.elapsed().as_nanos() as u64;
        self.counters.distance_evals += evals;
    }

    /// Finds or (re)builds the slot answering `(space, backend, radius)`
    /// for `cloud`, returning its position. Rebuilds happen in place —
    /// verification cloud and index storage reuse their capacity.
    fn ensure_slot(
        &mut self,
        space: u64,
        backend: SearchBackend,
        radius: f32,
        cloud: &PointCloud,
    ) -> usize {
        self.clock += 1;
        let radius_bits = if backend == SearchBackend::Grid { radius.to_bits() } else { 0 };
        let found = self
            .slots
            .iter()
            .position(|s| s.space == space && s.backend == backend && s.radius_bits == radius_bits);
        let si = match found {
            Some(si) => si,
            None if self.slots.len() < MAX_SLOTS => {
                self.slots.push(Slot {
                    space,
                    backend,
                    radius_bits,
                    cloud: PointCloud::new(),
                    last_use: self.clock,
                    index: match backend {
                        SearchBackend::Grid => SlotIndex::Grid(UniformGrid::default()),
                        SearchBackend::Octree => SlotIndex::Octree(self.new_octree()),
                        _ => SlotIndex::Kd(KdTree::default()),
                    },
                });
                self.slots.len() - 1
            }
            None => {
                // Evict the least-recently-used slot and rekey it.
                let si = self
                    .slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_use)
                    .map(|(i, _)| i)
                    .expect("slot pool is non-empty at capacity");
                let slot = &mut self.slots[si];
                slot.space = space;
                slot.backend = backend;
                slot.radius_bits = radius_bits;
                // Force a rebuild below even if the cloud matches: the
                // index answered a different (backend, radius) before.
                slot.cloud = PointCloud::new();
                let matches_backend = matches!(
                    (&slot.index, backend),
                    (SlotIndex::Kd(_), SearchBackend::KdTree | SearchBackend::BruteForce)
                        | (SlotIndex::Grid(_), SearchBackend::Grid)
                        | (SlotIndex::Octree(_), SearchBackend::Octree)
                );
                if !matches_backend {
                    let fresh = match backend {
                        SearchBackend::Grid => SlotIndex::Grid(UniformGrid::default()),
                        SearchBackend::Octree => SlotIndex::Octree(self.new_octree()),
                        _ => SlotIndex::Kd(KdTree::default()),
                    };
                    self.slots[si].index = fresh;
                }
                si
            }
        };
        let slot = &mut self.slots[si];
        slot.last_use = self.clock;
        if !slot.cloud.content_eq(cloud) {
            slot.cloud.copy_from(cloud);
            let start = Instant::now();
            match &mut slot.index {
                SlotIndex::Kd(tree) => tree.build_into(cloud),
                SlotIndex::Grid(grid) => {
                    grid.set_cell_size(radius);
                    grid.build_into(cloud);
                }
                SlotIndex::Octree(tree) => SearchIndex::build_into(&mut **tree, cloud),
            }
            self.counters.index_builds += 1;
            self.counters.index_build_ns += start.elapsed().as_nanos() as u64;
        }
        si
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ball, bruteforce};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn queries(n: usize) -> Vec<usize> {
        (0..n).step_by(3).collect()
    }

    #[test]
    fn every_backend_matches_bruteforce_knn_through_the_trait() {
        let cloud = sample_shape(ShapeClass::Chair, 150, 1);
        let q = queries(150);
        let want = bruteforce::knn_indices(&cloud, &q, 7);
        let mut backends: Vec<Box<dyn SearchIndex>> = vec![
            Box::new(<KdTree as SearchIndex>::build(&cloud)),
            Box::new(<BruteForceIndex as SearchIndex>::build(&cloud)),
            Box::new(<FeatureBrute as SearchIndex>::build(&cloud)),
        ];
        for b in &mut backends {
            let mut got = NeighborIndexTable::default();
            b.knn_into(&cloud, &q, 7, &mut got);
            assert_eq!(got, want, "backend {:?}", b.kind());
        }
    }

    #[test]
    fn context_answers_match_reference_and_share_indices() {
        let cloud = sample_shape(ShapeClass::Lamp, 400, 2);
        let q = queries(400);
        let mut ctx = SearchContext::with_planner(SearchPlanner::auto());
        let mut out = NeighborIndexTable::default();

        ctx.knn_into(1, &cloud, &q, 9, &mut out);
        assert_eq!(out, bruteforce::knn_indices(&cloud, &q, 9));

        ctx.ball_into(1, &cloud, &q, 0.25, 8, &mut out);
        let tree = KdTree::build(&cloud);
        assert_eq!(out, ball::ball_query(&cloud, &tree, &q, 0.25, 8));

        // Re-querying the same (space, cloud) must not rebuild.
        let builds = ctx.counters().index_builds;
        ctx.knn_into(1, &cloud, &q, 9, &mut out);
        ctx.ball_into(1, &cloud, &q, 0.25, 8, &mut out);
        assert_eq!(ctx.counters().index_builds, builds, "warm spaces must not rebuild");
        assert!(ctx.counters().distance_evals > 0);
        assert!(ctx.storage_bytes() > 0);
    }

    #[test]
    fn context_rebuilds_when_cloud_content_changes_under_same_space() {
        let a = sample_shape(ShapeClass::Chair, 300, 3);
        let b = sample_shape(ShapeClass::Sphere, 300, 4);
        let q = queries(300);
        let mut ctx = SearchContext::with_planner(SearchPlanner::forced(SearchBackend::KdTree));
        let mut out = NeighborIndexTable::default();
        ctx.knn_into(7, &a, &q, 5, &mut out);
        let builds = ctx.counters().index_builds;
        // Same space id, different frame contents: must rebuild and answer
        // for the new cloud.
        ctx.knn_into(7, &b, &q, 5, &mut out);
        assert_eq!(ctx.counters().index_builds, builds + 1);
        assert_eq!(out, bruteforce::knn_indices(&b, &q, 5));
        // Steady state: same-sized frames stop growing storage.
        let bytes = ctx.storage_bytes();
        ctx.knn_into(7, &a, &q, 5, &mut out);
        ctx.knn_into(7, &b, &q, 5, &mut out);
        assert_eq!(ctx.storage_bytes(), bytes, "rebuilds must reuse slot storage");
    }

    #[test]
    fn forced_planner_choices_stay_bit_identical() {
        let cloud = sample_shape(ShapeClass::Guitar, 350, 5);
        let q = queries(350);
        let reference = bruteforce::knn_indices(&cloud, &q, 11);
        for backend in [SearchBackend::BruteForce, SearchBackend::KdTree, SearchBackend::Grid] {
            let mut ctx = SearchContext::with_planner(SearchPlanner::forced(backend));
            let mut out = NeighborIndexTable::default();
            ctx.knn_into(0, &cloud, &q, 11, &mut out);
            assert_eq!(out, reference, "forced {backend:?} drifted on kNN");
            let tree = KdTree::build(&cloud);
            let ball_ref = ball::ball_query(&cloud, &tree, &q, 0.3, 6);
            ctx.ball_into(0, &cloud, &q, 0.3, 6, &mut out);
            assert_eq!(out, ball_ref, "forced {backend:?} drifted on ball");
        }
    }

    #[test]
    fn slot_pool_evicts_lru_without_unbounded_growth() {
        let q: Vec<usize> = (0..64).collect();
        let mut ctx = SearchContext::with_planner(SearchPlanner::forced(SearchBackend::KdTree));
        let mut out = NeighborIndexTable::default();
        for space in 0..(MAX_SLOTS as u64 + 9) {
            let cloud = sample_shape(ShapeClass::Cube, 64, space + 1);
            ctx.knn_into(space, &cloud, &q, 4, &mut out);
            assert_eq!(out, bruteforce::knn_indices(&cloud, &q, 4), "space {space}");
        }
        assert!(ctx.slots.len() <= MAX_SLOTS);
    }

    #[test]
    fn tile_budget_on_context_is_bit_identical_across_budgets() {
        let cloud = sample_shape(ShapeClass::Airplane, 500, 6);
        let q: Vec<usize> = (0..500).collect();
        let want_knn = bruteforce::knn_indices(&cloud, &q, 9);
        let tree = KdTree::build(&cloud);
        let want_ball = ball::ball_query(&cloud, &tree, &q, 0.3, 8);
        for budget in [1, 64, 500, 501] {
            let mut ctx = SearchContext::with_planner(SearchPlanner::auto());
            ctx.set_tile_budget(Some(budget));
            assert_eq!(ctx.tile_budget(), Some(budget));
            let mut out = NeighborIndexTable::default();
            ctx.knn_into(3, &cloud, &q, 9, &mut out);
            assert_eq!(out, want_knn, "budget {budget} knn");
            ctx.ball_into(3, &cloud, &q, 0.3, 8, &mut out);
            assert_eq!(out, want_ball, "budget {budget} ball");
        }
    }

    #[test]
    #[should_panic(expected = "tile budget must be positive")]
    fn zero_tile_budget_panics() {
        SearchContext::new().set_tile_budget(Some(0));
    }

    #[test]
    fn feature_search_routes_through_the_context() {
        let data: Vec<f32> = (0..512).map(|i| ((i * 13) % 61) as f32 * 0.2).collect();
        let view = FeatureView::new(&data, 8).unwrap();
        let q: Vec<usize> = (0..64).step_by(5).collect();
        let want = feature::knn_rows(view, &q, 6);
        let mut ctx = SearchContext::new();
        let mut out = NeighborIndexTable::default();
        ctx.feature_knn_into(view, &q, 6, &mut out);
        assert_eq!(out, want);
    }
}
