//! Backend planning: which search structure should answer a module's query?
//!
//! PointAcc-style measurements show index construction and backend choice
//! dominate end-to-end latency for point-cloud workloads, and the best
//! backend depends on the workload shape: exhaustive scans win when
//! `N · Q` is small (no build cost, perfect locality), trees win for large
//! kNN batches, grids win for fixed-radius queries once clouds are dense.
//! The [`SearchPlanner`] encodes that choice as a deterministic cost model
//! over `(mode, N_in, queries, k)` — *never* affecting results, since every
//! backend in this crate is exact with identical index tie-breaking; only
//! where the time goes.
//!
//! The choice can be forced for experiments via the `MESORASI_SEARCH`
//! environment variable (`auto` | `kdtree` | `grid` | `bruteforce` |
//! `octree`) or the session builder's override. Forcing a backend that
//! cannot serve a query
//! class (the grid answers radius queries only, and needs a positive
//! radius) falls back to the automatic choice for that query rather than
//! failing — the override is a preference, not a correctness knob.

use std::sync::OnceLock;

/// A selectable search backend. Feature-space kNN is not listed: feature
/// dimensions reach 64–512 where spatial structures degenerate, so those
/// searches always run the dense row scan (see [`crate::feature`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchBackend {
    /// Exhaustive scan — no index, best for small workloads.
    BruteForce,
    /// kd-tree — exact kNN and radius queries, `O(log n)` descents.
    KdTree,
    /// Uniform grid with `cell_size = radius` — radius queries only.
    Grid,
    /// Morton-bucket octree — exact kNN and radius queries on large
    /// clouds; supports LOD sampling and paged leaf payloads.
    Octree,
}

impl SearchBackend {
    /// The name used in bench records and the `MESORASI_SEARCH` variable.
    pub fn name(self) -> &'static str {
        match self {
            SearchBackend::BruteForce => "bruteforce",
            SearchBackend::KdTree => "kdtree",
            SearchBackend::Grid => "grid",
            SearchBackend::Octree => "octree",
        }
    }
}

/// Cloud size where the kd-tree's pointer-chasing descents start paying a
/// locality penalty: beyond L2-resident clouds (~2^17 points), each
/// backtrack is a cache miss, while the octree's Morton leaves stay
/// contiguous. Doubles the kd-tree's per-query charge past this size.
const LOCALITY_N: usize = 1 << 17;

/// `2` once `n` spills the cache-resident regime, else `1` (see
/// [`LOCALITY_N`]).
fn kd_locality_penalty(n: usize) -> u64 {
    if n >= LOCALITY_N {
        2
    } else {
        1
    }
}

/// One planned search workload: `queries` centroids against `n` candidate
/// points with `k` results each.
#[derive(Debug, Clone, Copy)]
pub struct SearchLoad {
    /// Candidate point count (`N_in`).
    pub n: usize,
    /// Number of centroid queries.
    pub queries: usize,
    /// Neighbors per query.
    pub k: usize,
}

/// `⌈log₂ n⌉`-ish tree depth used by the cost terms.
fn depth(n: usize) -> u64 {
    (usize::BITS - n.max(2).leading_zeros()) as u64
}

/// Estimated cost, in distance-evaluation units, of answering `load` as a
/// kNN batch on `backend`, **including** index construction. The constants
/// are calibrated against the bench harness's measured ns/op on the
/// 1K–130K-point clouds this repo runs (brute-force ≈ `3·n·q` inner ops;
/// a kd-tree descent touches a few leaves plus backtracking); they decide
/// crossover points only — every backend returns identical tables.
pub fn knn_cost(backend: SearchBackend, load: &SearchLoad) -> u64 {
    let (n, q, k) = (load.n as u64, load.queries as u64, load.k as u64);
    match backend {
        SearchBackend::BruteForce => 3 * n * q,
        // Build: one median select per level over n items. Query: ~4 leaf
        // scans of LEAF_SIZE=16 points plus k maintenance per level.
        SearchBackend::KdTree => {
            n * depth(load.n) + kd_locality_penalty(load.n) * q * (64 + 3 * k) * depth(load.n)
        }
        SearchBackend::Grid => u64::MAX, // cannot answer kNN exactly
        // Build: a radix-like Morton sort, ~n·d/2 (cheaper than median
        // splits). Query: fatter leaves (32 points) cost a little more per
        // descent, but stay contiguous at any n.
        SearchBackend::Octree => n * depth(load.n) / 2 + q * (80 + 3 * k) * depth(load.n),
    }
}

/// Estimated cost of answering `load` as a padded radius batch on
/// `backend`, including index construction. Same units as [`knn_cost`].
pub fn ball_cost(backend: SearchBackend, load: &SearchLoad) -> u64 {
    let (n, q, k) = (load.n as u64, load.queries as u64, load.k as u64);
    match backend {
        SearchBackend::BruteForce => 3 * n * q,
        // Radius descents visit every in-range leaf; charge like kNN with
        // a sort tail proportional to k.
        SearchBackend::KdTree => {
            n * depth(load.n) + kd_locality_penalty(load.n) * q * (64 + 4 * k) * depth(load.n)
        }
        // Build: bin + sort. Query: a 3×3×3 cell scan of bounded occupancy
        // (cell edge = radius keeps occupancy near k for the paper's
        // workloads) — cheaper per query than a descent on large clouds.
        SearchBackend::Grid => 2 * n * depth(load.n) + q * 27 * (8 + k),
        // Half the kd build (Morton sort), contiguous in-range leaf scans.
        SearchBackend::Octree => n * depth(load.n) / 2 + q * (72 + 4 * k) * depth(load.n),
    }
}

/// Picks backends per query shape from the cost model, with an optional
/// forced override. Copyable and cheap: every engine worker owns one.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchPlanner {
    forced: Option<SearchBackend>,
}

impl SearchPlanner {
    /// The automatic cost-model planner.
    pub fn auto() -> SearchPlanner {
        SearchPlanner { forced: None }
    }

    /// A planner that prefers `backend` wherever it can serve the query.
    pub fn forced(backend: SearchBackend) -> SearchPlanner {
        SearchPlanner { forced: Some(backend) }
    }

    /// A planner configured from the `MESORASI_SEARCH` environment variable
    /// (read once per process): `auto` (or unset) for the cost model,
    /// `kdtree` / `grid` / `bruteforce` / `octree` to force a backend.
    ///
    /// # Panics
    ///
    /// Panics on any other value, naming the accepted ones. A typo'd
    /// override silently falling back to `auto` would *look* like the
    /// requested backend was measured — config errors must fail loudly,
    /// not skew experiments.
    pub fn from_env() -> SearchPlanner {
        static RESOLVED: OnceLock<Option<SearchBackend>> = OnceLock::new();
        let forced = *RESOLVED.get_or_init(|| {
            let raw = std::env::var("MESORASI_SEARCH").ok()?;
            match parse_override(&raw) {
                Ok(forced) => forced,
                Err(InvalidSearchOverride) => panic!(
                    "invalid MESORASI_SEARCH='{raw}': accepted values are \
                     auto|kdtree|grid|bruteforce|octree (case-insensitive)"
                ),
            }
        });
        SearchPlanner { forced }
    }

    /// The forced backend, if any.
    pub fn forced_backend(&self) -> Option<SearchBackend> {
        self.forced
    }

    /// The backend that should answer a kNN batch. The grid cannot (it
    /// serves fixed-radius queries only), so a forced grid falls back to
    /// the automatic choice here.
    pub fn plan_knn(&self, load: &SearchLoad) -> SearchBackend {
        match self.forced {
            Some(SearchBackend::Grid) | None => pick_min(
                &[SearchBackend::BruteForce, SearchBackend::KdTree, SearchBackend::Octree],
                |b| knn_cost(b, load),
            ),
            Some(b) => b,
        }
    }

    /// The backend that should answer a padded radius batch. A
    /// non-positive radius excludes the grid (its cell edge must be
    /// positive), so degenerate `radius = 0` queries route to the kd-tree
    /// or brute force.
    pub fn plan_ball(&self, load: &SearchLoad, radius: f32) -> SearchBackend {
        let grid_ok = radius > 0.0 && radius.is_finite();
        match self.forced {
            Some(SearchBackend::Grid) if !grid_ok => {}
            Some(b) => return b,
            None => {}
        }
        let mut candidates =
            vec![SearchBackend::BruteForce, SearchBackend::KdTree, SearchBackend::Octree];
        if grid_ok {
            candidates.push(SearchBackend::Grid);
        }
        pick_min(&candidates, |b| ball_cost(b, load))
    }
}

fn pick_min(candidates: &[SearchBackend], cost: impl Fn(SearchBackend) -> u64) -> SearchBackend {
    *candidates.iter().min_by_key(|&&b| cost(b)).expect("candidate list is never empty")
}

/// Error of [`parse_override`]: the value was none of
/// `auto|kdtree|grid|bruteforce|octree`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSearchOverride;

impl std::fmt::Display for InvalidSearchOverride {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected one of auto|kdtree|grid|bruteforce|octree")
    }
}

impl std::error::Error for InvalidSearchOverride {}

/// Parses a `MESORASI_SEARCH` value: `Ok(None)` means auto, `Ok(Some(_))`
/// a forced backend.
pub fn parse_override(raw: &str) -> Result<Option<SearchBackend>, InvalidSearchOverride> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "kdtree" => Ok(Some(SearchBackend::KdTree)),
        "grid" => Ok(Some(SearchBackend::Grid)),
        "bruteforce" => Ok(Some(SearchBackend::BruteForce)),
        "octree" => Ok(Some(SearchBackend::Octree)),
        _ => Err(InvalidSearchOverride),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: SearchLoad = SearchLoad { n: 96, queries: 24, k: 8 };
    const LARGE: SearchLoad = SearchLoad { n: 4096, queries: 1024, k: 32 };

    #[test]
    fn parse_override_accepts_documented_values() {
        assert_eq!(parse_override("auto"), Ok(None));
        assert_eq!(parse_override(" KdTree "), Ok(Some(SearchBackend::KdTree)));
        assert_eq!(parse_override("grid"), Ok(Some(SearchBackend::Grid)));
        assert_eq!(parse_override("bruteforce"), Ok(Some(SearchBackend::BruteForce)));
        assert_eq!(parse_override("octree"), Ok(Some(SearchBackend::Octree)));
        assert_eq!(parse_override("oct-tree"), Err(InvalidSearchOverride));
    }

    #[test]
    fn auto_knn_prefers_brute_for_tiny_and_tree_for_large() {
        let p = SearchPlanner::auto();
        assert_eq!(p.plan_knn(&SMALL), SearchBackend::BruteForce);
        assert_eq!(p.plan_knn(&LARGE), SearchBackend::KdTree);
    }

    #[test]
    fn auto_ball_uses_grid_only_at_scale_and_with_positive_radius() {
        let p = SearchPlanner::auto();
        assert_eq!(p.plan_ball(&SMALL, 0.3), SearchBackend::BruteForce);
        assert_eq!(p.plan_ball(&LARGE, 0.3), SearchBackend::Grid);
        assert_ne!(p.plan_ball(&LARGE, 0.0), SearchBackend::Grid, "radius 0 excludes the grid");
        assert_ne!(
            p.plan_ball(&LARGE, f32::INFINITY),
            SearchBackend::Grid,
            "non-finite radius excludes the grid"
        );
    }

    #[test]
    fn forced_backends_are_honored_where_servable() {
        let brute = SearchPlanner::forced(SearchBackend::BruteForce);
        assert_eq!(brute.plan_knn(&LARGE), SearchBackend::BruteForce);
        assert_eq!(brute.plan_ball(&LARGE, 0.3), SearchBackend::BruteForce);
        let grid = SearchPlanner::forced(SearchBackend::Grid);
        assert_eq!(grid.plan_ball(&LARGE, 0.3), SearchBackend::Grid);
        // Grid cannot serve kNN or degenerate radii: automatic fallback.
        assert_ne!(grid.plan_knn(&LARGE), SearchBackend::Grid);
        assert_ne!(grid.plan_ball(&LARGE, 0.0), SearchBackend::Grid);
    }

    #[test]
    fn octree_crosses_over_at_out_of_core_scale() {
        let p = SearchPlanner::auto();
        // Paper-scale and mid-scale loads keep their historical picks …
        assert_eq!(p.plan_knn(&SMALL), SearchBackend::BruteForce);
        assert_eq!(p.plan_knn(&LARGE), SearchBackend::KdTree);
        assert_eq!(p.plan_ball(&LARGE, 0.3), SearchBackend::Grid);
        // … but once the cloud spills the cache-resident regime, kNN
        // crosses over to the octree's contiguous Morton leaves.
        let huge = SearchLoad { n: 1 << 17, queries: 1024, k: 32 };
        assert_eq!(p.plan_knn(&huge), SearchBackend::Octree);
        assert_eq!(
            p.plan_ball(&huge, 0.0),
            SearchBackend::Octree,
            "degenerate radii exclude the grid; the octree serves them at scale"
        );
        let forced = SearchPlanner::forced(SearchBackend::Octree);
        assert_eq!(forced.plan_knn(&SMALL), SearchBackend::Octree);
        assert_eq!(forced.plan_ball(&SMALL, 0.3), SearchBackend::Octree);
    }

    #[test]
    fn knn_cost_is_monotone_in_workload() {
        let mid = SearchLoad { n: 1024, queries: 512, k: 16 };
        for backend in [SearchBackend::BruteForce, SearchBackend::KdTree] {
            assert!(knn_cost(backend, &SMALL) < knn_cost(backend, &mid));
            assert!(knn_cost(backend, &mid) < knn_cost(backend, &LARGE));
        }
        assert_eq!(knn_cost(SearchBackend::Grid, &mid), u64::MAX);
    }
}
