//! Exact KNN by exhaustive search.
//!
//! This is the reference against which the kd-tree is tested, and the
//! algorithm whose cost the GPU model charges for neighbor search: GPU
//! point-cloud implementations (including the paper's baselines) compute a
//! dense pairwise-distance matrix and select the top-K, because that maps
//! well onto GPU execution even though it does more work than a tree.

use crate::NeighborIndexTable;
use mesorasi_pointcloud::{Point3, PointCloud};

/// An index paired with its squared distance to the query. Ordering ties are
/// broken by index so results are deterministic across implementations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Index of the candidate point in the searched cloud.
    pub index: usize,
    /// Squared distance to the query point.
    pub dist_sq: f32,
}

impl Candidate {
    fn key(&self) -> (f32, usize) {
        (self.dist_sq, self.index)
    }
}

/// Inserts `c` into `best`, an ascending insertion-sorted buffer bounded to
/// `k` candidates (by distance, ties by index). O(k) per insert, which
/// beats a heap for the k ≤ 128 range point-cloud networks use. Shared by
/// the brute-force selection, the kd-tree descent, and the feature search,
/// so every backend breaks ties identically.
pub(crate) fn push_bounded(best: &mut Vec<Candidate>, k: usize, c: Candidate) {
    if best.len() == k && c.key() >= best.last().expect("best is non-empty when len == k").key() {
        return;
    }
    let pos = best.partition_point(|b| b.key() < c.key());
    best.insert(pos, c);
    if best.len() > k {
        best.pop();
    }
}

/// Selects the `k` smallest candidates (by distance, ties by index) from an
/// unsorted list, in ascending order.
pub(crate) fn select_k_smallest(candidates: &mut Vec<Candidate>, k: usize) -> Vec<Candidate> {
    let mut best: Vec<Candidate> = Vec::with_capacity(k + 1);
    for &c in candidates.iter() {
        push_bounded(&mut best, k, c);
    }
    candidates.clear();
    best
}

/// Finds the `k` nearest neighbors (including the query point itself if it
/// belongs to the cloud) of one explicit query point.
///
/// # Panics
///
/// Panics if `k` exceeds the cloud size or the cloud is empty.
pub fn knn_point(cloud: &PointCloud, query: Point3, k: usize) -> Vec<Candidate> {
    assert!(k > 0 && k <= cloud.len(), "k = {k} out of range for {} points", cloud.len());
    let mut candidates: Vec<Candidate> = cloud
        .points()
        .iter()
        .enumerate()
        .map(|(i, &p)| Candidate { index: i, dist_sq: p.distance_squared(query) })
        .collect();
    select_k_smallest(&mut candidates, k)
}

/// Runs KNN for every centroid in `queries` (indices into `cloud`) and
/// collects the results into a [`NeighborIndexTable`]. Queries are searched
/// in parallel (each is an independent exhaustive scan). A thin wrapper
/// over [`crate::index::BruteForceIndex`]'s `knn_into`, so the reference
/// path and the pluggable backend cannot diverge.
///
/// Matches the paper's module semantics: the query set is a subset of the
/// input points ("the neighbor search might be applied to only a subset of
/// the input points", §III-A), and each point is its own nearest neighbor.
///
/// # Panics
///
/// Panics if any query index is out of bounds or `k > cloud.len()`.
pub fn knn_indices(cloud: &PointCloud, queries: &[usize], k: usize) -> NeighborIndexTable {
    use crate::index::SearchIndex;
    let mut out = NeighborIndexTable::default();
    crate::index::BruteForceIndex::default().knn_into(cloud, queries, k, &mut out);
    out
}

/// The number of distance computations a brute-force KNN performs — the
/// work term the GPU cost model charges (each distance is 3 subs, 3 MULs,
/// 2 adds in 3-D; generalized to `dim`).
pub fn distance_ops(n_points: usize, n_queries: usize, dim: usize) -> u64 {
    (n_points as u64) * (n_queries as u64) * (3 * dim as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn nearest_neighbor_of_member_query_is_itself() {
        let cloud = sample_shape(ShapeClass::Sphere, 128, 3);
        let nit = knn_indices(&cloud, &[5, 17, 99], 4);
        for (entry, &q) in (0..3).zip(&[5usize, 17, 99]) {
            assert_eq!(nit.neighbors(entry)[0], q, "self must be first neighbor");
            assert_eq!(nit.centroid(entry), q);
        }
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let cloud = sample_shape(ShapeClass::Chair, 200, 1);
        let found = knn_point(&cloud, cloud.point(0), 10);
        for w in found.windows(2) {
            assert!(w[0].dist_sq <= w[1].dist_sq);
        }
    }

    #[test]
    fn knn_matches_full_sort() {
        let cloud = sample_shape(ShapeClass::Guitar, 64, 9);
        let q = cloud.point(10);
        let mut all: Vec<Candidate> = cloud
            .points()
            .iter()
            .enumerate()
            .map(|(i, &p)| Candidate { index: i, dist_sq: p.distance_squared(q) })
            .collect();
        all.sort_by(|a, b| a.key().partial_cmp(&b.key()).unwrap());
        let got = knn_point(&cloud, q, 7);
        let want: Vec<usize> = all[..7].iter().map(|c| c.index).collect();
        let got_idx: Vec<usize> = got.iter().map(|c| c.index).collect();
        assert_eq!(got_idx, want);
    }

    #[test]
    fn k_equals_n_returns_everything() {
        let cloud = sample_shape(ShapeClass::Cube, 16, 2);
        let found = knn_point(&cloud, cloud.point(0), 16);
        let mut idx: Vec<usize> = found.iter().map(|c| c.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_larger_than_n_panics() {
        let cloud = sample_shape(ShapeClass::Cube, 8, 2);
        let _ = knn_point(&cloud, cloud.point(0), 9);
    }

    #[test]
    fn tie_break_is_by_index() {
        // Four identical points: neighbors must come back in index order.
        let cloud = PointCloud::from_points(vec![Point3::ORIGIN; 4]);
        let found = knn_point(&cloud, Point3::ORIGIN, 3);
        let idx: Vec<usize> = found.iter().map(|c| c.index).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn distance_ops_scales_bilinearly() {
        assert_eq!(distance_ops(100, 10, 3), 9_000);
        assert_eq!(distance_ops(200, 10, 3), 18_000);
        assert_eq!(distance_ops(100, 20, 3), 18_000);
    }
}
