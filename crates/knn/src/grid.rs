//! Uniform-grid neighbor search — the backend real-time pipelines use for
//! fixed-radius queries (cell size = radius ⇒ only 27 cells to scan).
//!
//! Results are identical to [`crate::kdtree`]'s radius queries and to the
//! padded [`crate::ball`] semantics; the grid trades build simplicity and
//! cache-friendly scans for the kd-tree's generality. Exposed as an
//! alternative backend so downstream users (and the benches) can pick per
//! workload.

use crate::bruteforce::Candidate;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::{Aabb, Point3, PointCloud};
use std::collections::HashMap;

/// A uniform grid with cell edge `cell_size` over a cloud.
#[derive(Debug)]
pub struct UniformGrid {
    bounds: Aabb,
    cell_size: f32,
    dims: [usize; 3],
    cells: HashMap<u64, Vec<usize>>,
}

impl UniformGrid {
    /// Builds a grid over `cloud` with the given cell edge length.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or the cloud is empty.
    pub fn build(cloud: &PointCloud, cell_size: f32) -> Self {
        assert!(cell_size > 0.0, "cell size must be positive");
        let bounds = cloud.bounds().expect("cannot index an empty cloud");
        let extent = bounds.extent();
        let dim = |e: f32| ((e / cell_size).ceil() as usize).max(1);
        let dims = [dim(extent.x), dim(extent.y), dim(extent.z)];
        let mut grid = UniformGrid { bounds, cell_size, dims, cells: HashMap::new() };
        for (i, &p) in cloud.points().iter().enumerate() {
            let key = grid.key(grid.coords(p));
            grid.cells.entry(key).or_default().push(i);
        }
        grid
    }

    fn coords(&self, p: Point3) -> [isize; 3] {
        let min = self.bounds.min();
        let c = |v: f32, lo: f32, d: usize| -> isize {
            (((v - lo) / self.cell_size) as isize).clamp(0, d as isize - 1)
        };
        [c(p.x, min.x, self.dims[0]), c(p.y, min.y, self.dims[1]), c(p.z, min.z, self.dims[2])]
    }

    fn key(&self, c: [isize; 3]) -> u64 {
        ((c[0] as u64) * self.dims[1] as u64 + c[1] as u64) * self.dims[2] as u64 + c[2] as u64
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// All points within `radius` of `query`, ascending by distance (ties
    /// by index). Exact as long as `radius <= cell_size`; larger radii scan
    /// proportionally more cells.
    pub fn within_radius(&self, cloud: &PointCloud, query: Point3, radius: f32) -> Vec<Candidate> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let reach = (radius / self.cell_size).ceil() as isize;
        let center = self.coords(query);
        let r2 = radius * radius;
        let mut found = Vec::new();
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    let c = [center[0] + dx, center[1] + dy, center[2] + dz];
                    if c.iter().zip(&self.dims).any(|(&v, &d)| v < 0 || v >= d as isize) {
                        continue;
                    }
                    if let Some(members) = self.cells.get(&self.key(c)) {
                        for &i in members {
                            let d = cloud.point(i).distance_squared(query);
                            if d <= r2 {
                                found.push(Candidate { index: i, dist_sq: d });
                            }
                        }
                    }
                }
            }
        }
        found.sort_by(|a, b| {
            (a.dist_sq, a.index).partial_cmp(&(b.dist_sq, b.index)).expect("distances are finite")
        });
        found
    }

    /// Padded ball query over member-point centroids — same semantics as
    /// [`crate::ball::ball_query`], different backend. Parallel per query
    /// (the cell scan is read-only).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or a query index is out of bounds.
    pub fn ball_query(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
    ) -> NeighborIndexTable {
        assert!(k > 0, "k must be positive");
        // 27 cells of roughly n / occupied points each is the nominal scan.
        let cost = 27 * cloud.len().div_ceil(self.occupied_cells().max(1)) * 8;
        crate::batch_entries(k, queries, cost, |q| {
            let found = self.within_radius(cloud, cloud.point(q), radius);
            crate::ball::pad_entry(found.iter().take(k).map(|c| c.index).collect(), k)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ball, kdtree::KdTree};
    use mesorasi_pointcloud::sampling::random_indices;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn radius_query_matches_kdtree() {
        let cloud = sample_shape(ShapeClass::Chair, 300, 1);
        let grid = UniformGrid::build(&cloud, 0.25);
        let tree = KdTree::build(&cloud);
        for &q in &[0usize, 57, 123, 299] {
            let a = grid.within_radius(&cloud, cloud.point(q), 0.25);
            let b = tree.within_radius(&cloud, cloud.point(q), 0.25);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn ball_query_matches_kdtree_backend() {
        let cloud = sample_shape(ShapeClass::Lamp, 256, 2);
        let grid = UniformGrid::build(&cloud, 0.2);
        let tree = KdTree::build(&cloud);
        let queries = random_indices(&cloud, 64, 1);
        let a = grid.ball_query(&cloud, &queries, 0.2, 16);
        let b = ball::ball_query(&cloud, &tree, &queries, 0.2, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn radius_larger_than_cell_still_exact() {
        let cloud = sample_shape(ShapeClass::Sphere, 200, 3);
        let grid = UniformGrid::build(&cloud, 0.1);
        let tree = KdTree::build(&cloud);
        let a = grid.within_radius(&cloud, cloud.point(5), 0.45);
        let b = tree.within_radius(&cloud, cloud.point(5), 0.45);
        assert_eq!(a, b);
    }

    #[test]
    fn occupied_cells_bounded_by_points() {
        let cloud = sample_shape(ShapeClass::Cube, 128, 4);
        let grid = UniformGrid::build(&cloud, 0.3);
        assert!(grid.occupied_cells() <= 128);
        assert!(grid.occupied_cells() > 1);
    }

    #[test]
    fn zero_radius_finds_exact_duplicates_only() {
        let cloud = sample_shape(ShapeClass::Cone, 64, 5);
        let grid = UniformGrid::build(&cloud, 0.2);
        let found = grid.within_radius(&cloud, cloud.point(7), 0.0);
        assert!(found.iter().any(|c| c.index == 7));
        assert!(found.iter().all(|c| c.dist_sq == 0.0));
    }
}
