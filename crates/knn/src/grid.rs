//! Uniform-grid neighbor search — the backend real-time pipelines use for
//! fixed-radius queries (cell size = radius ⇒ only 27 cells to scan).
//!
//! Results are identical to [`crate::kdtree`]'s radius queries and to the
//! padded [`crate::ball`] semantics; the grid trades build simplicity and
//! cache-friendly scans for the kd-tree's generality. The cells are stored
//! as one sorted `(cell key, point index)` vector rather than a hash map of
//! per-cell vectors, so [`UniformGrid::build_into`] rebuilds over a new
//! cloud in place — same-sized frames rebuild without allocating — and a
//! cell lookup is two binary searches over a contiguous array.

use crate::bruteforce::Candidate;
use crate::kdtree::sort_candidates;
use crate::NeighborIndexTable;
use mesorasi_pointcloud::{Aabb, Point3, PointCloud};

/// A uniform grid with cell edge `cell_size` over a cloud.
#[derive(Debug)]
pub struct UniformGrid {
    bounds: Aabb,
    cell_size: f32,
    dims: [usize; 3],
    /// `(cell key, point index)`, sorted — all members of one cell are a
    /// contiguous run, in ascending point order.
    entries: Vec<(u64, u32)>,
    occupied: usize,
    /// Sequential-query candidate scratch (parallel chunks use their own).
    scratch: Vec<Candidate>,
}

impl Default for UniformGrid {
    /// An unbuilt grid with no configured cell size; call
    /// [`UniformGrid::set_cell_size`] then [`UniformGrid::build_into`].
    fn default() -> Self {
        UniformGrid {
            bounds: Aabb::from_points([Point3::ORIGIN]).expect("one point"),
            cell_size: 0.0,
            dims: [1, 1, 1],
            entries: Vec::new(),
            occupied: 0,
            scratch: Vec::new(),
        }
    }
}

impl UniformGrid {
    /// Builds a grid over `cloud` with the given cell edge length.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or the cloud is empty.
    pub fn build(cloud: &PointCloud, cell_size: f32) -> Self {
        let mut grid = UniformGrid::default();
        grid.set_cell_size(cell_size);
        grid.build_into(cloud);
        grid
    }

    /// Configures the cell edge length used by the next
    /// [`UniformGrid::build_into`]. Radius queries are exact as long as the
    /// query radius does not exceed this (the planner builds one grid per
    /// `(cloud, radius)` with `cell_size = radius`).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size <= 0` or not finite.
    pub fn set_cell_size(&mut self, cell_size: f32) {
        assert!(cell_size > 0.0 && cell_size.is_finite(), "cell size must be positive");
        self.cell_size = cell_size;
    }

    /// Rebuilds the grid over `cloud` with the configured cell size,
    /// reusing the entry storage: binning is an in-place unstable sort, so
    /// same-sized frames rebuild with zero allocations.
    ///
    /// # Panics
    ///
    /// Panics if the cloud is empty or no cell size was configured.
    pub fn build_into(&mut self, cloud: &PointCloud) {
        assert!(self.cell_size > 0.0, "set_cell_size before build_into");
        assert!(cloud.len() <= u32::MAX as usize, "grid point indices are 32-bit");
        self.bounds = cloud.bounds().expect("cannot index an empty cloud");
        let extent = self.bounds.extent();
        // A zero-extent cloud (all points coincident) degenerates to a
        // single cell; `max(1)` keeps every dimension valid.
        let dim = |e: f32| ((e / self.cell_size).ceil() as usize).max(1);
        self.dims = [dim(extent.x), dim(extent.y), dim(extent.z)];
        let mut entries = std::mem::take(&mut self.entries);
        entries.clear();
        entries.extend(
            cloud.points().iter().enumerate().map(|(i, &p)| (self.key(self.coords(p)), i as u32)),
        );
        self.entries = entries;
        // Sort by (cell, point index): cells become contiguous runs and
        // members stay in ascending point order — the same order the old
        // hash-map insertion produced.
        self.entries.sort_unstable();
        self.occupied = count_runs(&self.entries);
    }

    fn coords(&self, p: Point3) -> [isize; 3] {
        let min = self.bounds.min();
        let c = |v: f32, lo: f32, d: usize| -> isize {
            (((v - lo) / self.cell_size) as isize).clamp(0, d as isize - 1)
        };
        [c(p.x, min.x, self.dims[0]), c(p.y, min.y, self.dims[1]), c(p.z, min.z, self.dims[2])]
    }

    fn key(&self, c: [isize; 3]) -> u64 {
        ((c[0] as u64) * self.dims[1] as u64 + c[1] as u64) * self.dims[2] as u64 + c[2] as u64
    }

    /// The members of the cell with `key`, in ascending point order.
    fn cell_members(&self, key: u64) -> &[(u64, u32)] {
        let lo = self.entries.partition_point(|e| e.0 < key);
        let hi = lo + self.entries[lo..].partition_point(|e| e.0 == key);
        &self.entries[lo..hi]
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.occupied
    }

    /// Heap bytes retained by the grid's storage (capacity, not length).
    pub fn storage_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(u64, u32)>()
            + self.scratch.capacity() * std::mem::size_of::<Candidate>()
    }

    /// All points within `radius` of `query`, ascending by distance (ties
    /// by index). Exact as long as `radius <= cell_size`; larger radii scan
    /// proportionally more cells.
    pub fn within_radius(&self, cloud: &PointCloud, query: Point3, radius: f32) -> Vec<Candidate> {
        let mut found = Vec::new();
        self.within_radius_into(cloud, query, radius, &mut found);
        found
    }

    /// [`UniformGrid::within_radius`] writing into a caller-owned vector.
    /// Returns the number of distance evaluations.
    pub fn within_radius_into(
        &self,
        cloud: &PointCloud,
        query: Point3,
        radius: f32,
        found: &mut Vec<Candidate>,
    ) -> u64 {
        assert!(radius >= 0.0, "radius must be non-negative");
        found.clear();
        let reach = (radius / self.cell_size).ceil() as isize;
        let center = self.coords(query);
        let r2 = radius * radius;
        let mut evals = 0u64;
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    let c = [center[0] + dx, center[1] + dy, center[2] + dz];
                    if c.iter().zip(&self.dims).any(|(&v, &d)| v < 0 || v >= d as isize) {
                        continue;
                    }
                    for &(_, i) in self.cell_members(self.key(c)) {
                        let d = cloud.point(i as usize).distance_squared(query);
                        evals += 1;
                        if d <= r2 {
                            found.push(Candidate { index: i as usize, dist_sq: d });
                        }
                    }
                }
            }
        }
        sort_candidates(found);
        evals
    }

    /// Padded ball query over member-point centroids — same semantics as
    /// [`crate::ball::ball_query`], different backend. Parallel per query
    /// (the cell scan is read-only). A thin wrapper over the same batch
    /// [`UniformGrid::ball_into`] runs, so the two paths cannot diverge.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or a query index is out of bounds.
    pub fn ball_query(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
    ) -> NeighborIndexTable {
        let mut out = NeighborIndexTable::default();
        self.ball_batch(cloud, queries, radius, k, &mut Vec::new(), &mut out);
        out
    }

    /// [`UniformGrid::ball_query`] writing into a caller-owned table,
    /// reusing this grid's scratch on the sequential path. Returns the
    /// number of distance evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `radius < 0`, or a query index is out of bounds.
    pub fn ball_into(
        &mut self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        let mut scratch = std::mem::take(&mut self.scratch);
        let evals = self.ball_batch(cloud, queries, radius, k, &mut scratch, out);
        self.scratch = scratch;
        evals
    }

    fn ball_batch(
        &self,
        cloud: &PointCloud,
        queries: &[usize],
        radius: f32,
        k: usize,
        scratch: &mut Vec<Candidate>,
        out: &mut NeighborIndexTable,
    ) -> u64 {
        assert!(k > 0, "k must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let cost = self.per_query_cost(cloud.len());
        crate::kdtree::batch_into(out, queries, k, cost, scratch, |found, q, slot| {
            let evals = self.within_radius_into(cloud, cloud.point(q), radius, found);
            crate::ball::pad_slot(found, slot);
            evals
        })
    }

    /// Nominal per-query scan work: 27 cells of average occupancy.
    fn per_query_cost(&self, n_points: usize) -> usize {
        27 * n_points.div_ceil(self.occupied.max(1)) * 8
    }
}

/// Number of distinct keys in a sorted `(key, _)` slice.
fn count_runs(entries: &[(u64, u32)]) -> usize {
    let mut runs = 0;
    let mut prev = None;
    for &(k, _) in entries {
        if prev != Some(k) {
            runs += 1;
            prev = Some(k);
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ball, kdtree::KdTree};
    use mesorasi_pointcloud::sampling::random_indices;
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    #[test]
    fn radius_query_matches_kdtree() {
        let cloud = sample_shape(ShapeClass::Chair, 300, 1);
        let grid = UniformGrid::build(&cloud, 0.25);
        let tree = KdTree::build(&cloud);
        for &q in &[0usize, 57, 123, 299] {
            let a = grid.within_radius(&cloud, cloud.point(q), 0.25);
            let b = tree.within_radius(&cloud, cloud.point(q), 0.25);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn ball_query_matches_kdtree_backend() {
        let cloud = sample_shape(ShapeClass::Lamp, 256, 2);
        let grid = UniformGrid::build(&cloud, 0.2);
        let tree = KdTree::build(&cloud);
        let queries = random_indices(&cloud, 64, 1);
        let a = grid.ball_query(&cloud, &queries, 0.2, 16);
        let b = ball::ball_query(&cloud, &tree, &queries, 0.2, 16);
        assert_eq!(a, b);
    }

    #[test]
    fn ball_into_matches_ball_query() {
        let cloud = sample_shape(ShapeClass::Chair, 200, 9);
        let mut grid = UniformGrid::build(&cloud, 0.3);
        let queries = random_indices(&cloud, 50, 2);
        let want = grid.ball_query(&cloud, &queries, 0.3, 12);
        let mut got = NeighborIndexTable::default();
        let evals = grid.ball_into(&cloud, &queries, 0.3, 12, &mut got);
        assert_eq!(got, want);
        assert!(evals > 0);
    }

    #[test]
    fn build_into_reuses_storage_across_same_sized_clouds() {
        let a = sample_shape(ShapeClass::Chair, 256, 1);
        let b = sample_shape(ShapeClass::Sphere, 256, 2);
        let mut grid = UniformGrid::build(&a, 0.25);
        let bytes = grid.storage_bytes();
        grid.build_into(&b);
        assert_eq!(grid.storage_bytes(), bytes, "same-sized rebuild must not grow storage");
        let tree = KdTree::build(&b);
        let got = grid.within_radius(&b, b.point(17), 0.25);
        assert_eq!(got, tree.within_radius(&b, b.point(17), 0.25));
    }

    #[test]
    fn radius_larger_than_cell_still_exact() {
        let cloud = sample_shape(ShapeClass::Sphere, 200, 3);
        let grid = UniformGrid::build(&cloud, 0.1);
        let tree = KdTree::build(&cloud);
        let a = grid.within_radius(&cloud, cloud.point(5), 0.45);
        let b = tree.within_radius(&cloud, cloud.point(5), 0.45);
        assert_eq!(a, b);
    }

    #[test]
    fn occupied_cells_bounded_by_points() {
        let cloud = sample_shape(ShapeClass::Cube, 128, 4);
        let grid = UniformGrid::build(&cloud, 0.3);
        assert!(grid.occupied_cells() <= 128);
        assert!(grid.occupied_cells() > 1);
    }

    #[test]
    fn zero_radius_finds_exact_duplicates_only() {
        let cloud = sample_shape(ShapeClass::Cone, 64, 5);
        let grid = UniformGrid::build(&cloud, 0.2);
        let found = grid.within_radius(&cloud, cloud.point(7), 0.0);
        assert!(found.iter().any(|c| c.index == 7));
        assert!(found.iter().all(|c| c.dist_sq == 0.0));
    }

    #[test]
    fn coincident_points_collapse_to_one_cell() {
        // Zero-extent AABB: every point lands in the single valid cell and
        // ball queries still answer exactly (the satellite audit case).
        let cloud = PointCloud::from_points(vec![Point3::new(0.5, -1.0, 2.0); 40]);
        let grid = UniformGrid::build(&cloud, 0.2);
        assert_eq!(grid.occupied_cells(), 1);
        let nit = grid.ball_query(&cloud, &[0, 7], 0.2, 5);
        assert_eq!(nit.neighbors(0), &[0, 1, 2, 3, 4]);
        assert_eq!(nit.neighbors(1), &[0, 1, 2, 3, 4]);
    }
}
