//! Leaf-payload storage for the octree: resident or file-backed with a
//! byte-budgeted LRU pager.
//!
//! The octree ([`crate::octree`]) splits a cloud into contiguous
//! Morton-sorted leaf runs. Where those runs *live* is this module's
//! concern: [`ResidentStore`] keeps them in one flat in-memory buffer (the
//! fast path — the whole sorted cloud is a slice), while [`FileStore`]
//! spills them to a temporary file and pages at most `budget` bytes of
//! leaves back in through an LRU of resident slots — the out-of-core
//! scenario where a 2^20-point cloud answers queries under a memory budget
//! smaller than its own storage. Both implement [`NodeStore`], and both
//! return the *exact bytes* that were pushed at build time (payloads
//! round-trip through the file as raw little-endian `f32` bits), so paging
//! can never change a query result — only where the time and memory go.
//!
//! The LRU is modeled on the engine's sample cache: an intrusive
//! doubly-linked list over a slot vector, eviction from the tail, and slot
//! buffers reused across evict/readmit cycles so a warm query stream
//! allocates only when a leaf larger than any seen before pages in.
//! [`PagerStats`] counts hits/misses/evictions and is surfaced through
//! `EngineStats`.

use mesorasi_pointcloud::Point3;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The default pager budget, from the `MESORASI_PAGER_BUDGET` environment
/// variable (read once per process): unset or empty means resident leaf
/// payloads (`None` — empty counts as unset because CI can only blank a
/// job-level variable, not remove it); a byte count pages them under that
/// budget; `unbounded` pages with no eviction pressure (the store still
/// round-trips the file — useful for exercising the paged path without
/// churn).
///
/// # Panics
///
/// Panics on any other value. A typo'd budget silently falling back to
/// resident would *look* like paging was measured — config errors must
/// fail loudly.
pub fn budget_from_env() -> Option<usize> {
    static RESOLVED: OnceLock<Option<usize>> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        let raw = std::env::var("MESORASI_PAGER_BUDGET").ok()?;
        let trimmed = raw.trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.eq_ignore_ascii_case("unbounded") {
            return Some(usize::MAX);
        }
        match trimmed.parse::<usize>() {
            Ok(bytes) => Some(bytes),
            Err(_) => panic!(
                "invalid MESORASI_PAGER_BUDGET='{raw}': expected a byte count or 'unbounded'"
            ),
        }
    })
}

/// Bytes one point occupies in a leaf payload (three little-endian `f32`s).
pub const POINT_BYTES: usize = 12;

/// `u32` sentinel for "no slot / no link".
const NIL: u32 = u32::MAX;

/// Pager traffic and occupancy counters, surfaced through `EngineStats`.
///
/// A [`ResidentStore`] never pages, so it reports zero traffic; only
/// file-backed octree slots contribute hits/misses/evictions.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Leaf accesses served by an already-resident slot.
    pub hits: u64,
    /// Leaf accesses that had to read the backing file.
    pub misses: u64,
    /// Leaves dropped from residency to make room.
    pub evictions: u64,
    /// Bytes of leaf payload currently resident.
    pub resident_bytes: usize,
    /// The LRU byte budget; `0` means unbudgeted (resident store).
    pub budget_bytes: usize,
}

impl PagerStats {
    /// Accumulates `other` into `self` (per-slot stats roll up to the
    /// engine like the sample-cache stats do).
    pub fn add(&mut self, other: &PagerStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.resident_bytes += other.resident_bytes;
        self.budget_bytes += other.budget_bytes;
    }

    /// Fraction of leaf accesses served without touching the file
    /// (`0.0` when there was no traffic).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Where octree leaf payloads live. Leaves are pushed in node order during
/// a (re)build and addressed by the `u32` id that order assigns; payloads
/// read back bit-identical to what was pushed, so the choice of store never
/// affects query results.
pub trait NodeStore: Send + std::fmt::Debug {
    /// Starts a rebuild: drops every stored leaf (reusing buffers) and
    /// prepares for `leaves` pushes (a capacity hint, not a bound).
    fn begin_rebuild(&mut self, leaves: usize);

    /// Appends one leaf payload, returning its id (`0, 1, 2, ...` in push
    /// order).
    fn push_leaf(&mut self, points: &[Point3]) -> u32;

    /// Ends a rebuild; the store answers [`NodeStore::leaf_points`] for
    /// every pushed id afterwards.
    fn finish_rebuild(&mut self);

    /// The payload of leaf `leaf`, bit-identical to what was pushed. Takes
    /// `&mut self` because a paged store may need to fault the leaf in
    /// (and touch its LRU state).
    fn leaf_points(&mut self, leaf: u32) -> &[Point3];

    /// Traffic and occupancy counters since construction.
    fn stats(&self) -> PagerStats;

    /// Heap bytes retained by the store (capacity, not length).
    fn storage_bytes(&self) -> usize;
}

/// The in-memory store: every leaf payload lives in one flat buffer in
/// push order (which, for the octree, is the Morton-sorted cloud itself).
#[derive(Debug, Default)]
pub struct ResidentStore {
    points: Vec<Point3>,
    /// `(start, len)` into `points`, per leaf.
    offsets: Vec<(u32, u32)>,
}

impl ResidentStore {
    /// The concatenated leaf payloads — for the octree, the Morton-sorted
    /// cloud as one slice. Shared access is what lets resident queries run
    /// in parallel (no LRU state to mutate).
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// The `start..start + len` range of leaf `leaf` within
    /// [`ResidentStore::points`].
    pub fn leaf_range(&self, leaf: u32) -> (usize, usize) {
        let (start, len) = self.offsets[leaf as usize];
        (start as usize, len as usize)
    }
}

impl NodeStore for ResidentStore {
    fn begin_rebuild(&mut self, leaves: usize) {
        self.points.clear();
        self.offsets.clear();
        self.offsets.reserve(leaves);
    }

    fn push_leaf(&mut self, points: &[Point3]) -> u32 {
        let id = self.offsets.len() as u32;
        self.offsets.push((self.points.len() as u32, points.len() as u32));
        self.points.extend_from_slice(points);
        id
    }

    fn finish_rebuild(&mut self) {}

    fn leaf_points(&mut self, leaf: u32) -> &[Point3] {
        let (start, len) = self.leaf_range(leaf);
        &self.points[start..start + len]
    }

    fn stats(&self) -> PagerStats {
        PagerStats { resident_bytes: self.points.len() * POINT_BYTES, ..PagerStats::default() }
    }

    fn storage_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point3>()
            + self.offsets.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

/// One resident leaf in the [`FileStore`] LRU: its decoded payload plus
/// intrusive list links ([`NIL`]-terminated, front = most recent).
#[derive(Debug)]
struct LeafSlot {
    leaf: u32,
    points: Vec<Point3>,
    prev: u32,
    next: u32,
}

/// The file-backed store: leaf payloads live in an unlinked-on-drop
/// temporary file; at most `budget` bytes of them are resident at once,
/// managed by an LRU (the incoming leaf is always admitted, so a budget
/// smaller than one leaf degrades to single-leaf residency rather than
/// failing). See the module docs for the exactness argument.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
    file: Option<File>,
    budget: usize,
    /// `(byte offset, point count)` into the file, per leaf.
    offsets: Vec<(u64, u32)>,
    write_pos: u64,
    slots: Vec<LeafSlot>,
    /// Leaf id → slot index, [`NIL`] when not resident.
    slot_of: Vec<u32>,
    /// Recycled slot indices (buffers kept warm for the next fault).
    free: Vec<u32>,
    head: u32,
    tail: u32,
    resident_bytes: usize,
    io_buf: Vec<u8>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FileStore {
    /// A store paging under `budget` bytes of resident leaf payload. The
    /// backing file is created lazily on first rebuild and removed on drop.
    pub fn new(budget: usize) -> FileStore {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let name = format!(
            "mesorasi-pager-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        );
        FileStore {
            path: std::env::temp_dir().join(name),
            file: None,
            budget,
            offsets: Vec::new(),
            write_pos: 0,
            slots: Vec::new(),
            slot_of: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            resident_bytes: 0,
            io_buf: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The LRU byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn unlink(&mut self, s: u32) {
        let (prev, next) = {
            let slot = &self.slots[s as usize];
            (slot.prev, slot.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn link_front(&mut self, s: u32) {
        let old_head = self.head;
        {
            let slot = &mut self.slots[s as usize];
            slot.prev = NIL;
            slot.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    fn evict_tail(&mut self) {
        let s = self.tail;
        debug_assert!(s != NIL, "evict only while something is resident");
        self.unlink(s);
        let slot = &mut self.slots[s as usize];
        self.resident_bytes -= slot.points.len() * POINT_BYTES;
        self.slot_of[slot.leaf as usize] = NIL;
        slot.leaf = NIL;
        slot.points.clear();
        self.free.push(s);
        self.evictions += 1;
    }

    /// Decodes leaf bytes at `off` into slot `s`'s point buffer.
    fn fault_in(&mut self, off: u64, count: u32, s: u32) {
        let bytes = count as usize * POINT_BYTES;
        self.io_buf.resize(bytes, 0);
        let file = self.file.as_mut().expect("leaf reads follow a rebuild");
        file.seek(SeekFrom::Start(off)).expect("pager file seek");
        file.read_exact(&mut self.io_buf).expect("pager file read");
        let points = &mut self.slots[s as usize].points;
        points.clear();
        points.reserve(count as usize);
        for chunk in self.io_buf.chunks_exact(POINT_BYTES) {
            let f = |r: std::ops::Range<usize>| {
                f32::from_le_bytes(chunk[r].try_into().expect("4-byte lanes"))
            };
            points.push(Point3::new(f(0..4), f(4..8), f(8..12)));
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

impl NodeStore for FileStore {
    fn begin_rebuild(&mut self, leaves: usize) {
        if self.file.is_none() {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&self.path)
                .expect("pager backing file creation");
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("created above");
        file.seek(SeekFrom::Start(0)).expect("pager file rewind");
        self.write_pos = 0;
        self.offsets.clear();
        self.offsets.reserve(leaves);
        // Drop residency, keeping every slot buffer for reuse.
        while self.tail != NIL {
            // A rebuild is not eviction pressure: don't count it.
            self.evict_tail();
            self.evictions -= 1;
        }
    }

    fn push_leaf(&mut self, points: &[Point3]) -> u32 {
        let id = self.offsets.len() as u32;
        self.offsets.push((self.write_pos, points.len() as u32));
        self.io_buf.clear();
        self.io_buf.reserve(points.len() * POINT_BYTES);
        for p in points {
            self.io_buf.extend_from_slice(&p.x.to_le_bytes());
            self.io_buf.extend_from_slice(&p.y.to_le_bytes());
            self.io_buf.extend_from_slice(&p.z.to_le_bytes());
        }
        let file = self.file.as_mut().expect("push_leaf follows begin_rebuild");
        file.write_all(&self.io_buf).expect("pager file write");
        self.write_pos += self.io_buf.len() as u64;
        id
    }

    fn finish_rebuild(&mut self) {
        self.file.as_mut().expect("finish follows begin").flush().expect("pager file flush");
        self.slot_of.clear();
        self.slot_of.resize(self.offsets.len(), NIL);
    }

    fn leaf_points(&mut self, leaf: u32) -> &[Point3] {
        let s = self.slot_of[leaf as usize];
        if s != NIL {
            self.hits += 1;
            if self.head != s {
                self.unlink(s);
                self.link_front(s);
            }
            return &self.slots[s as usize].points;
        }
        self.misses += 1;
        let (off, count) = self.offsets[leaf as usize];
        let bytes = count as usize * POINT_BYTES;
        // Evict from the cold end until the incoming leaf fits; a budget
        // smaller than the leaf empties the LRU and admits it anyway.
        while self.tail != NIL && self.resident_bytes + bytes > self.budget {
            self.evict_tail();
        }
        let s = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(LeafSlot { leaf: NIL, points: Vec::new(), prev: NIL, next: NIL });
                (self.slots.len() - 1) as u32
            }
        };
        self.fault_in(off, count, s);
        self.slots[s as usize].leaf = leaf;
        self.slot_of[leaf as usize] = s;
        self.resident_bytes += bytes;
        self.link_front(s);
        &self.slots[s as usize].points
    }

    fn stats(&self) -> PagerStats {
        PagerStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident_bytes,
            budget_bytes: self.budget,
        }
    }

    fn storage_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<(u64, u32)>()
            + (self.slot_of.capacity() + self.free.capacity()) * std::mem::size_of::<u32>()
            + self.io_buf.capacity()
            + self.slots.capacity() * std::mem::size_of::<LeafSlot>()
            + self
                .slots
                .iter()
                .map(|s| s.points.capacity() * std::mem::size_of::<Point3>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(seed: u32, n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                let v = (i as u32).wrapping_mul(2654435761).wrapping_add(seed);
                Point3::new(
                    (v & 0xff) as f32 * 0.01,
                    ((v >> 8) & 0xff) as f32 * 0.01,
                    ((v >> 16) & 0xff) as f32 * 0.01,
                )
            })
            .collect()
    }

    fn fill<S: NodeStore>(store: &mut S, leaves: &[Vec<Point3>]) {
        store.begin_rebuild(leaves.len());
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(store.push_leaf(leaf), i as u32);
        }
        store.finish_rebuild();
    }

    #[test]
    fn both_stores_round_trip_leaf_payloads_bit_exactly() {
        let leaves: Vec<Vec<Point3>> = (0..6).map(|s| pts(s, 5 + s as usize * 3)).collect();
        let mut resident = ResidentStore::default();
        let mut paged = FileStore::new(usize::MAX);
        fill(&mut resident, &leaves);
        fill(&mut paged, &leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            assert_eq!(resident.leaf_points(i as u32), &leaf[..]);
            assert_eq!(paged.leaf_points(i as u32), &leaf[..]);
        }
    }

    #[test]
    fn tiny_budget_churns_but_stays_exact() {
        let leaves: Vec<Vec<Point3>> = (0..8).map(|s| pts(s, 16)).collect();
        // One 16-point leaf is 192 bytes; budget one leaf exactly.
        let mut store = FileStore::new(16 * POINT_BYTES);
        fill(&mut store, &leaves);
        for round in 0..3 {
            for (i, leaf) in leaves.iter().enumerate() {
                assert_eq!(store.leaf_points(i as u32), &leaf[..], "round {round} leaf {i}");
            }
        }
        let stats = store.stats();
        assert_eq!(stats.hits, 0, "a one-leaf budget can never re-hit a round-robin scan");
        assert_eq!(stats.misses, 24);
        assert!(stats.evictions >= 16, "every fault after the first must evict");
        assert!(stats.resident_bytes <= 16 * POINT_BYTES);
    }

    #[test]
    fn generous_budget_hits_after_first_round() {
        let leaves: Vec<Vec<Point3>> = (0..4).map(|s| pts(s, 8)).collect();
        let mut store = FileStore::new(usize::MAX);
        fill(&mut store, &leaves);
        for _ in 0..3 {
            for i in 0..4u32 {
                store.leaf_points(i);
            }
        }
        let stats = store.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used_leaf() {
        let leaves: Vec<Vec<Point3>> = (0..3).map(|s| pts(s, 4)).collect();
        // Room for exactly two 4-point leaves.
        let mut store = FileStore::new(2 * 4 * POINT_BYTES);
        fill(&mut store, &leaves);
        store.leaf_points(0); // resident: {0}
        store.leaf_points(1); // resident: {1, 0}
        store.leaf_points(0); // touch 0 → resident: {0, 1}
        store.leaf_points(2); // evicts 1 (the LRU), not 0
        let miss_before = store.stats().misses;
        store.leaf_points(0);
        assert_eq!(store.stats().misses, miss_before, "0 must still be resident");
        store.leaf_points(1);
        assert_eq!(store.stats().misses, miss_before + 1, "1 was the eviction victim");
    }

    #[test]
    fn rebuild_drops_residency_and_reuses_buffers() {
        let a: Vec<Vec<Point3>> = (0..5).map(|s| pts(s, 10)).collect();
        let b: Vec<Vec<Point3>> = (10..15).map(|s| pts(s, 10)).collect();
        let mut store = FileStore::new(usize::MAX);
        fill(&mut store, &a);
        for i in 0..5u32 {
            store.leaf_points(i);
        }
        fill(&mut store, &b);
        // Warm rebuild of the same shape: re-faulting every leaf must not
        // grow storage (slot and io buffers reused).
        for i in 0..5u32 {
            assert_eq!(store.leaf_points(i), &b[i as usize][..]);
        }
        let bytes = store.storage_bytes();
        fill(&mut store, &a);
        for i in 0..5u32 {
            assert_eq!(store.leaf_points(i), &a[i as usize][..]);
        }
        assert_eq!(store.storage_bytes(), bytes, "warm same-shape rebuild must not allocate");
        // A rebuild is not eviction pressure.
        assert_eq!(store.stats().evictions, 0);
    }

    #[test]
    fn backing_file_is_removed_on_drop() {
        let leaves = vec![pts(1, 4)];
        let mut store = FileStore::new(usize::MAX);
        fill(&mut store, &leaves);
        let path = store.path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "pager must unlink its temp file");
    }

    #[test]
    fn stats_add_rolls_up() {
        let mut total = PagerStats::default();
        let a =
            PagerStats { hits: 3, misses: 1, evictions: 1, resident_bytes: 96, budget_bytes: 128 };
        total.add(&a);
        total.add(&a);
        assert_eq!(total.hits, 6);
        assert_eq!(total.resident_bytes, 192);
        assert_eq!(PagerStats::default().hit_rate(), 0.0);
    }
}
