//! The neighbor search engine (NSE) model.
//!
//! §VII-E evaluates Mesorasi on a futuristic SoC with a dedicated neighbor
//! search accelerator (\[59\], Tigris). The paper characterizes it as "over
//! 60× speedup over the GPU" for the neighbor searches in these networks;
//! we model exactly that — a fixed speedup and a proportional energy
//! scaling — because the NSE's internals are not Mesorasi's contribution
//! (the paper: "the NSE is not our contribution").

use crate::gpu::KernelCost;

/// NSE configuration.
#[derive(Debug, Clone, Copy)]
pub struct NseConfig {
    /// Latency speedup over the GPU search kernel.
    pub speedup_vs_gpu: f64,
    /// Energy ratio vs the GPU search kernel (ASICs also save energy).
    pub energy_ratio: f64,
}

impl Default for NseConfig {
    fn default() -> Self {
        NseConfig { speedup_vs_gpu: 60.0, energy_ratio: 0.02 }
    }
}

impl NseConfig {
    /// Converts a GPU search cost into the NSE's.
    pub fn from_gpu(&self, gpu_cost: KernelCost) -> KernelCost {
        KernelCost {
            ms: gpu_cost.ms / self.speedup_vs_gpu,
            mj: gpu_cost.mj * self.energy_ratio,
            dram_bytes: gpu_cost.dram_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nse_is_60x_faster() {
        let nse = NseConfig::default();
        let gpu = KernelCost { ms: 60.0, mj: 100.0, dram_bytes: 1000 };
        let got = nse.from_gpu(gpu);
        assert!((got.ms - 1.0).abs() < 1e-9);
        assert!(got.mj < gpu.mj);
        assert_eq!(got.dram_bytes, gpu.dram_bytes);
    }
}
