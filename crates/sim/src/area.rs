//! Area accounting (§VII-A).
//!
//! The paper's 16 nm synthesis results: the AU adds 0.059 mm² —
//! less than 3.8 % of the NPU — dominated by the 64 KB PFT buffer
//! (0.031 mm²) and the 2×12 KB NIT buffers; the crossbar-free PFT design
//! avoids a 0.064 mm² crossbar that a conventional 32-bank / 32-port SRAM
//! would need.

use crate::au::AuConfig;
use crate::energy::SRAM_MM2_PER_KB;
use crate::npu::NpuConfig;

/// Area of an SRAM of `kb` kilobytes, mm².
pub fn sram_mm2(kb: f64) -> f64 {
    kb * SRAM_MM2_PER_KB
}

/// Area of a `banks × banks` word-wide crossbar, mm². Quadratic in port
/// count; the constant is set so a 32×32 4-byte crossbar costs the 0.064
/// mm² the paper reports avoiding.
pub fn crossbar_mm2(banks: usize, word_bytes: usize) -> f64 {
    let reference = 0.064; // 32 banks × 4-byte words
    reference * ((banks * banks * word_bytes) as f64) / ((32 * 32 * 4) as f64)
}

/// Estimated NPU core area (PE array + global buffer), mm². Calibrated so
/// the AU overhead lands at the paper's "less than 3.8 %".
pub fn npu_mm2(npu: &NpuConfig) -> f64 {
    // PE area: a TPU-style 16-bit MAC, two input registers, accumulator
    // and control ≈ 3200 µm² at 16 nm (calibrated so the nominal NPU is
    // ≈1.55 mm², putting the paper's 0.059 mm² AU at its 3.8 % overhead).
    let pe_mm2 = 3200e-6;
    let array = (npu.rows * npu.cols) as f64 * pe_mm2;
    let buffer = sram_mm2(npu.global_buffer_kb as f64);
    array + buffer
}

/// AU area breakdown, mm².
#[derive(Debug, Clone, Copy)]
pub struct AuArea {
    /// PFT buffer (banked, crossbar-free).
    pub pft_buffer: f64,
    /// Both NIT buffer halves.
    pub nit_buffers: f64,
    /// Datapath: max tree, subtract units, AGU muxes, shift registers.
    pub datapath: f64,
}

impl AuArea {
    /// Total AU area.
    pub fn total(&self) -> f64 {
        self.pft_buffer + self.nit_buffers + self.datapath
    }
}

/// Computes the AU area for a configuration.
pub fn au_area(au: &AuConfig) -> AuArea {
    AuArea {
        pft_buffer: sram_mm2(au.pft_kb as f64),
        nit_buffers: sram_mm2(2.0 * au.nit_kb as f64),
        // 33-input max + 256 subtractors + 32 muxes + 2×256 flops: small
        // standard-cell logic, ≈ 0.016 mm² at the nominal configuration.
        datapath: 0.016,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pft_buffer_matches_papers_0_031_mm2() {
        let a = au_area(&AuConfig::default());
        assert!((a.pft_buffer - 0.031).abs() < 1e-3);
    }

    #[test]
    fn total_au_area_matches_papers_0_059_mm2() {
        let a = au_area(&AuConfig::default());
        assert!((a.total() - 0.059).abs() < 0.004, "got {}", a.total());
    }

    #[test]
    fn au_overhead_is_under_3_8_percent_of_npu() {
        let au = au_area(&AuConfig::default()).total();
        let npu = npu_mm2(&NpuConfig::default());
        let pct = au / npu * 100.0;
        assert!(pct < 3.8, "AU should be < 3.8 % of NPU, got {pct:.2} %");
        assert!(pct > 1.0, "sanity: overhead is not negligible, got {pct:.2} %");
    }

    #[test]
    fn avoided_crossbar_matches_papers_0_064_mm2() {
        assert!((crossbar_mm2(32, 4) - 0.064).abs() < 1e-9);
        // The crossbar would have doubled the PFT buffer cost (§VII-A).
        assert!(crossbar_mm2(32, 4) > au_area(&AuConfig::default()).pft_buffer);
    }

    #[test]
    fn crossbar_grows_quadratically() {
        assert!(crossbar_mm2(64, 4) > 3.9 * crossbar_mm2(32, 4));
    }
}
