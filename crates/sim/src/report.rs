//! Plain-text table formatting for experiment output.
//!
//! The experiment drivers print paper-style tables; this module keeps the
//! formatting in one place (fixed-width columns, consistent number
//! formats) so `repro` output is easy to diff against `EXPERIMENTS.md`.

use std::fmt::Write as _;

/// A simple fixed-width table builder.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width must match headers");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for (w, cell) in widths.iter().zip(cells) {
                let _ = write!(s, " {cell:<w$} |");
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a speedup factor.
pub fn speedup(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats bytes with binary units.
pub fn bytes(v: u64) -> String {
    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;
    if v >= MB {
        format!("{:.1} MB", v as f64 / MB as f64)
    } else if v >= KB {
        format!("{:.1} KB", v as f64 / KB as f64)
    } else {
        format!("{v} B")
    }
}

/// Formats a MAC count in GOPs.
pub fn gops(v: u64) -> String {
    format!("{:.2}", v as f64 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_with_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| longer-name |"));
        assert!(s.contains("| a           |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(ms(1234.5), "1234");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(speedup(1.6), "1.60x");
        assert_eq!(pct(51.13), "51.1%");
        assert_eq!(bytes(512), "512 B");
        assert_eq!(bytes(2048), "2.0 KB");
        assert_eq!(bytes(8 << 20), "8.0 MB");
        assert_eq!(gops(2_500_000_000), "2.50");
    }
}
