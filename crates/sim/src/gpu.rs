//! The mobile GPU model (TX2-class Pascal).
//!
//! A roofline-plus-overhead model: each kernel's latency is
//! `max(compute, memory) + launch`, with per-kernel-class efficiency
//! factors standing in for the (large) gap between peak throughput and
//! what TensorFlow-style point-cloud kernels achieve on a mobile GPU. The
//! factors were calibrated once against the paper's published
//! characterization (Fig. 4 ordering, Fig. 5 stage split, Fig. 11 absolute
//! stage times) and then frozen; `EXPERIMENTS.md` records the residual
//! absolute-scale gap.

use crate::energy;
use mesorasi_core::trace::{AggregateOp, MatMulOp, ReduceOp, SearchOp};

/// GPU configuration.
#[derive(Debug, Clone, Copy)]
pub struct GpuConfig {
    /// Peak FP32 throughput, GFLOP/s (mobile Pascal @ ~1.3 GHz ≈ 665).
    pub peak_gflops: f64,
    /// Sustained DRAM bandwidth available to the GPU, GB/s.
    pub mem_bw_gbs: f64,
    /// L1/shared-memory capacity per SM × SMs, KB (paper's estimate:
    /// 48–96 KB).
    pub l1_kb: f64,
    /// L2 capacity, KB.
    pub l2_kb: f64,
    /// Fixed overhead per kernel launch, ms (framework + driver; the paper
    /// measures kernel launch time explicitly, §VI).
    pub launch_ms: f64,
    /// Dense matmul efficiency (fraction of peak).
    pub eff_matmul: f64,
    /// Pairwise-distance (matmul-trick) efficiency.
    pub eff_distance: f64,
    /// Top-K selection throughput, Gops/s — selection is control-flow
    /// bound and achieves a tiny fraction of peak on mobile GPUs.
    pub topk_gops: f64,
    /// Elementwise/streaming bandwidth efficiency.
    pub eff_stream: f64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            peak_gflops: 665.0,
            mem_bw_gbs: 25.6,
            l1_kb: 96.0,
            l2_kb: 2048.0,
            launch_ms: 0.1,
            eff_matmul: 0.07,
            eff_distance: 0.25,
            topk_gops: 0.18,
            eff_stream: 0.6,
        }
    }
}

/// Latency and energy of one kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Latency, milliseconds.
    pub ms: f64,
    /// Energy, millijoules (compute + static; DRAM accounted separately).
    pub mj: f64,
    /// DRAM traffic, bytes.
    pub dram_bytes: u64,
}

impl KernelCost {
    /// Combines two kernel costs executed back-to-back.
    pub fn plus(self, other: KernelCost) -> KernelCost {
        KernelCost {
            ms: self.ms + other.ms,
            mj: self.mj + other.mj,
            dram_bytes: self.dram_bytes + other.dram_bytes,
        }
    }
}

impl GpuConfig {
    fn cost(&self, flops: f64, eff: f64, bytes: f64) -> KernelCost {
        let compute_ms = flops / (self.peak_gflops * 1e9 * eff) * 1e3;
        let memory_ms = bytes / (self.mem_bw_gbs * 1e9 * self.eff_stream) * 1e3;
        let ms = compute_ms.max(memory_ms) + self.launch_ms;
        let mj = energy::pj_to_mj(flops * energy::GPU_PJ_PER_FLOP)
            + energy::GPU_STATIC_W * ms * 1e-3 * 1e3;
        KernelCost { ms, mj, dram_bytes: bytes as u64 }
    }

    /// One brute-force KNN kernel: pairwise distances via the matmul trick
    /// plus a top-K selection pass over the `Q × C` distance matrix.
    pub fn search(&self, op: &SearchOp) -> KernelCost {
        let q = op.queries as f64;
        let c = op.candidates as f64;
        let d = op.dim as f64;
        // Distance phase: 2·Q·C·D flops; traffic: read both point sets,
        // write + re-read the Q×C distance matrix.
        let dist_flops = 2.0 * q * c * d;
        let dist_bytes = 4.0 * (q * d + c * d + 2.0 * q * c);
        let dist = self.cost(dist_flops, self.eff_distance, dist_bytes);
        if op.radius_query {
            // Ball query: threshold scan + compaction, no sort — but
            // framework implementations chain ~16 broadcast kernels over
            // Q×C×(D+2)-shaped intermediates (tile, sub, square, sum,
            // less, where, gather, pad), each materialized to memory.
            let scan_bytes = 3.0 * q * c * (d + 2.0) * 4.0;
            let scan_ms = scan_bytes / (self.mem_bw_gbs * 1e9 * self.eff_stream) * 1e3
                + 16.0 * self.launch_ms;
            let scan_mj = energy::pj_to_mj(q * c * energy::GPU_PJ_PER_FLOP * 0.5)
                + energy::GPU_STATIC_W * scan_ms;
            return dist.plus(KernelCost {
                ms: scan_ms,
                mj: scan_mj,
                dram_bytes: scan_bytes as u64,
            });
        }
        // KNN selection phase: control-bound partial sort.
        let logk = (op.k.max(2) as f64).log2().ceil();
        let sel_ops = q * c * logk;
        let sel_ms = sel_ops / (self.topk_gops * 1e9) * 1e3 + self.launch_ms;
        let sel_mj = energy::pj_to_mj(sel_ops * energy::GPU_PJ_PER_FLOP * 0.5)
            + energy::GPU_STATIC_W * sel_ms;
        dist.plus(KernelCost { ms: sel_ms, mj: sel_mj, dram_bytes: (4.0 * q * c) as u64 })
    }

    /// One batched-MLP layer (matrix-matrix product + activation).
    pub fn matmul(&self, op: &MatMulOp) -> KernelCost {
        let flops = 2.0 * op.macs() as f64;
        let bytes = (op.input_bytes() + op.output_bytes() + op.weight_bytes()) as f64;
        self.cost(flops, self.eff_matmul, bytes)
    }

    /// One aggregation (irregular gather + subtract). Bandwidth-bound; the
    /// effective bandwidth degrades with the gather working set (§IV-C:
    /// the delayed PFT "is much larger than the L1 cache size") and small
    /// rows waste cache-line transfers.
    pub fn aggregate(&self, op: &AggregateOp) -> KernelCost {
        let ws_kb = op.working_set_bytes() as f64 / 1024.0;
        let locality = if ws_kb <= self.l1_kb {
            0.8
        } else if ws_kb <= self.l2_kb {
            0.25
        } else {
            0.12
        };
        // A gathered row narrower than a 32 B sector still moves a sector.
        let row_bytes = (op.width * 4) as f64;
        let amplification = (32.0 / row_bytes).max(1.0);
        // Fused (delayed) aggregation also reduces and subtracts in this
        // kernel; the original order's per-edge subtraction streams with
        // the following MLP kernel instead (it reads the gathered rows
        // anyway), which is how the paper's baselines keep original-order
        // aggregation at ~3 % of runtime (Fig. 12).
        let subtract_bytes =
            if op.fused_reduce { op.subtract_ops() as f64 * 4.0 * 2.0 } else { 0.0 };
        let bytes = op.bytes_gathered() as f64 * amplification + subtract_bytes;
        let flops = op.subtract_ops() as f64;
        let memory_ms = bytes / (self.mem_bw_gbs * 1e9 * locality) * 1e3;
        let compute_ms = flops / (self.peak_gflops * 1e9 * self.eff_stream) * 1e3;
        let ms = memory_ms.max(compute_ms) + self.launch_ms;
        let mj = energy::pj_to_mj(flops * energy::GPU_PJ_PER_FLOP) + energy::GPU_STATIC_W * ms;
        KernelCost { ms, mj, dram_bytes: bytes as u64 }
    }

    /// One grouped max reduction.
    pub fn reduce(&self, op: &ReduceOp) -> KernelCost {
        let in_bytes = 4.0 * (op.groups * op.k * op.width) as f64;
        let flops = op.compare_ops() as f64;
        self.cost(flops, self.eff_stream, in_bytes)
    }

    /// Unclassified streaming work (`other_flops` / `other_bytes`).
    pub fn other(&self, flops: u64, bytes: u64) -> KernelCost {
        if flops == 0 && bytes == 0 {
            return KernelCost::default();
        }
        self.cost(flops as f64, self.eff_stream, bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_knn::NeighborIndexTable;

    fn nit(entries: usize, k: usize) -> NeighborIndexTable {
        let mut t = NeighborIndexTable::new(k);
        for e in 0..entries {
            let row: Vec<usize> = (0..k).map(|j| (e * k + j) % (entries * k)).collect();
            t.push_entry(e, &row);
        }
        t
    }

    #[test]
    fn search_cost_grows_with_dimension() {
        let g = GpuConfig::default();
        let small = g.search(&SearchOp {
            queries: 512,
            candidates: 1024,
            dim: 3,
            k: 32,
            radius_query: false,
        });
        let big = g.search(&SearchOp {
            queries: 2048,
            candidates: 2048,
            dim: 256,
            k: 40,
            radius_query: false,
        });
        assert!(big.ms > 5.0 * small.ms, "feature-space KNN must dominate (DGCNN)");
    }

    #[test]
    fn matmul_cost_scales_with_rows() {
        let g = GpuConfig::default();
        let a = g.matmul(&MatMulOp { rows: 16384, inner: 64, cols: 128 });
        let b = g.matmul(&MatMulOp { rows: 1024, inner: 64, cols: 128 });
        assert!(a.ms > b.ms);
        assert!(a.mj > b.mj);
    }

    #[test]
    fn aggregation_slows_down_when_working_set_spills() {
        // §IV-C: the delayed gather working set exceeds L1 and aggregation
        // time rises. Same bytes gathered, different table widths.
        let g = GpuConfig::default();
        let small_ws = AggregateOp {
            nit: nit(512, 32),
            table_rows: 1024,
            width: 3,
            rows_per_entry: 33,
            fused_reduce: false,
        };
        let large_ws = AggregateOp {
            nit: nit(512, 32),
            table_rows: 1024,
            width: 128,
            rows_per_entry: 33,
            fused_reduce: true,
        };
        let a = g.aggregate(&small_ws);
        let b = g.aggregate(&large_ws);
        assert!(
            b.ms > 3.0 * a.ms,
            "delayed aggregation must be slower on GPU: {} vs {}",
            b.ms,
            a.ms
        );
    }

    #[test]
    fn every_kernel_pays_launch_overhead() {
        let g = GpuConfig::default();
        let tiny = g.reduce(&ReduceOp { groups: 1, k: 2, width: 1 });
        assert!(tiny.ms >= g.launch_ms);
    }

    #[test]
    fn costs_are_positive_and_finite() {
        let g = GpuConfig::default();
        let c = g.search(&SearchOp { queries: 1, candidates: 1, dim: 1, k: 1, radius_query: true });
        assert!(c.ms.is_finite() && c.ms > 0.0);
        assert!(c.mj.is_finite() && c.mj > 0.0);
    }
}
