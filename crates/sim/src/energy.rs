//! Energy and technology constants (16 nm-class, matching the paper's
//! TSMC 16 nm FinFET implementation and LPDDR3 DRAM).
//!
//! Absolute joules are model inputs, not measurements; what the
//! experiments rely on is the published *ratio* structure — most
//! importantly DRAM ≈ 70× SRAM per bit (paper §VI, matching \[23\], \[61\]) —
//! and the relative magnitudes of GPU vs NPU compute energy.

/// Energy of one NPU MAC operation (16-bit, 16 nm), picojoules.
pub const NPU_MAC_PJ: f64 = 0.4;

/// Energy per byte of on-chip SRAM access (global buffer scale), pJ.
pub const SRAM_PJ_PER_BYTE: f64 = 1.0;

/// Energy per byte of a small heavily-banked SRAM (PFT/NIT buffers), pJ.
/// Smaller arrays cost less per access than the 1.5 MB global buffer.
pub const SMALL_SRAM_PJ_PER_BYTE: f64 = 0.5;

/// Energy per byte of LPDDR3 DRAM traffic, pJ — 70× the SRAM energy per
/// bit (paper §VI: "the DRAM energy per bit is about 70× of that of SRAM",
/// consistent with Micron's power calculators).
pub const DRAM_PJ_PER_BYTE: f64 = SRAM_PJ_PER_BYTE * 70.0;

/// Effective energy per GPU flop (mobile Pascal, system-level: datapath,
/// fetch/decode, register files), pJ.
pub const GPU_PJ_PER_FLOP: f64 = 12.0;

/// GPU static + idle power charged against kernel latency, watts.
pub const GPU_STATIC_W: f64 = 1.5;

/// NPU static power, watts.
pub const NPU_STATIC_W: f64 = 0.15;

/// LPDDR3-1600, 4 channels (paper §VI): peak bandwidth in GB/s.
pub const DRAM_BW_GBS: f64 = 25.6;

/// SRAM area per KB at 16 nm (single-ported, from the paper's own data:
/// the 64 KB PFT buffer occupies 0.031 mm² ⇒ ≈ 0.00048 mm²/KB).
pub const SRAM_MM2_PER_KB: f64 = 0.031 / 64.0;

/// Joules from picojoules.
pub fn pj_to_j(pj: f64) -> f64 {
    pj * 1e-12
}

/// Millijoules from picojoules.
pub fn pj_to_mj(pj: f64) -> f64 {
    pj * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_to_sram_ratio_is_70x() {
        assert!((DRAM_PJ_PER_BYTE / SRAM_PJ_PER_BYTE - 70.0).abs() < 1e-9);
    }

    #[test]
    fn pft_buffer_area_matches_paper() {
        // 64 KB → 0.031 mm² (§VII-A).
        let area = SRAM_MM2_PER_KB * 64.0;
        assert!((area - 0.031).abs() < 1e-6);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(pj_to_j(1e12), 1.0);
        assert_eq!(pj_to_mj(1e9), 1.0);
    }

    #[test]
    fn gpu_flop_energy_exceeds_npu_mac_energy() {
        // The reason an NPU-enabled baseline is already 70 % lower energy
        // than the GPU (paper §VII-D). Read through locals so the ratio
        // under test stays visible in a failure message.
        let (gpu, npu) = (GPU_PJ_PER_FLOP, NPU_MAC_PJ);
        assert!(gpu > 10.0 * npu, "gpu {gpu} pJ/flop vs npu {npu} pJ/MAC");
    }
}
