//! Hardware models for the Mesorasi evaluation.
//!
//! The paper evaluates on a mobile SoC: a TX2-class Pascal GPU (measured),
//! a TPU-style 16×16 systolic NPU (synthesized RTL), the proposed
//! Aggregation Unit inside the NPU, LPDDR3 DRAM, and optionally a neighbor
//! search engine (NSE, \[59\]). None of that hardware is available here, so
//! this crate models each component analytically — calibrated to the
//! published characteristics — and replays the *real workload traces*
//! recorded by `mesorasi-core` (including actual neighbor index tables, so
//! bank conflicts in the AU are simulated on real index distributions).
//!
//! Components:
//!
//! * [`energy`] — 16 nm-class energy and area constants (DRAM ≈ 70× SRAM
//!   per bit, §VI),
//! * [`gpu`] — roofline-plus-overhead model of the mobile GPU,
//! * [`npu`] — cycle model of the systolic array and its global buffer,
//! * [`au`] — the Aggregation Unit: banked PFT buffer, multi-round
//!   conflict resolution, column-major partitioning (§V-B),
//! * [`nse`] — the neighbor-search engine of \[59\] (60× the GPU),
//! * [`soc`] — platform assembly and the critical-path scheduler,
//! * [`area`] — §VII-A's area accounting,
//! * [`report`] — plain-text table formatting for the experiments.
//!
//! # Example
//!
//! ```
//! use mesorasi_sim::soc::{simulate, Platform, SocConfig};
//! use mesorasi_core::{NetworkTrace, Strategy};
//!
//! let trace = NetworkTrace::new("empty", Strategy::Original);
//! let report = simulate(&trace, Platform::GpuOnly, &SocConfig::default());
//! assert_eq!(report.total_ms(), 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod area;
pub mod au;
pub mod energy;
pub mod gpu;
pub mod npu;
pub mod nse;
pub mod report;
pub mod soc;
