//! The systolic-array NPU model.
//!
//! Mirrors the paper's RTL configuration (§VI): a 16×16 PE array at 1 GHz
//! with TPU-style PEs, a 1.5 MB global buffer in 128 KB banks, and
//! double-buffered DMA so end-to-end latency is compute-dominated. MLPs in
//! point-cloud networks run batched (Fig. 3), so every layer is a
//! matrix-matrix product that tiles perfectly onto the array.

use crate::energy;
use mesorasi_core::trace::{MatMulOp, ReduceOp};

/// NPU configuration.
#[derive(Debug, Clone, Copy)]
pub struct NpuConfig {
    /// Systolic array rows (PEs along the input dimension).
    pub rows: usize,
    /// Systolic array columns.
    pub cols: usize,
    /// Clock, GHz.
    pub freq_ghz: f64,
    /// Global buffer capacity, KB.
    pub global_buffer_kb: usize,
    /// DRAM bandwidth available to the NPU's DMA, GB/s — layers whose
    /// activations spill are floored by this (the Fig. 21 effect: "a large
    /// SA is more likely throttled by memory bandwidth").
    pub mem_bw_gbs: f64,
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig { rows: 16, cols: 16, freq_ghz: 1.0, global_buffer_kb: 1536, mem_bw_gbs: 20.0 }
    }
}

/// Latency/energy of one NPU operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NpuCost {
    /// Latency, milliseconds.
    pub ms: f64,
    /// Energy, millijoules (MACs + buffer traffic + static).
    pub mj: f64,
    /// DRAM traffic for activations that do not fit on chip, bytes.
    pub dram_bytes: u64,
}

impl NpuCost {
    /// Sequential composition.
    pub fn plus(self, other: NpuCost) -> NpuCost {
        NpuCost {
            ms: self.ms + other.ms,
            mj: self.mj + other.mj,
            dram_bytes: self.dram_bytes + other.dram_bytes,
        }
    }
}

impl NpuConfig {
    /// Cycles for an `m×k · k×n` product with output-stationary tiling:
    /// each `rows × cols` output tile accumulates over `k` plus the
    /// pipeline fill/drain of the array.
    pub fn matmul_cycles(&self, m: usize, k: usize, n: usize) -> u64 {
        let tiles_m = m.div_ceil(self.rows) as u64;
        let tiles_n = n.div_ceil(self.cols) as u64;
        let per_tile = k as u64 + (self.rows + self.cols) as u64;
        tiles_m * tiles_n * per_tile
    }

    /// Latency and energy of one batched-MLP layer. Activations whose
    /// input+output footprint exceeds half the global buffer (the other
    /// half covers weights and double buffering) spill to DRAM — the
    /// original algorithm's 8–32 MB layer outputs do, the delayed
    /// algorithm's 0.5–1 MB outputs do not (Fig. 10).
    pub fn matmul(&self, op: &MatMulOp) -> NpuCost {
        let cycles = self.matmul_cycles(op.rows, op.inner, op.cols);
        let compute_ms = cycles as f64 / (self.freq_ghz * 1e9) * 1e3;
        let act_bytes = op.input_bytes() + op.output_bytes();
        let budget = (self.global_buffer_kb as u64) * 1024 / 2;
        // Every activation element streams through the global buffer; the
        // portion beyond the double-buffered budget round-trips DRAM (write
        // this layer, read back for the next). This asymmetry is the
        // Fig. 10 energy story: original-order 8–32 MB layer outputs spill,
        // delayed 0.5–1 MB outputs do not.
        let spill = act_bytes.saturating_sub(budget);
        let dram_bytes = 2 * spill + op.weight_bytes();
        let memory_ms = dram_bytes as f64 / (self.mem_bw_gbs * 1e9) * 1e3;
        let ms = compute_ms.max(memory_ms);
        let static_w = energy::NPU_STATIC_W * (self.rows * self.cols) as f64 / 256.0;
        let mj = energy::pj_to_mj(
            op.macs() as f64 * energy::NPU_MAC_PJ + act_bytes as f64 * energy::SRAM_PJ_PER_BYTE,
        ) + static_w * ms;
        NpuCost { ms, mj, dram_bytes }
    }

    /// A grouped max reduction on the NPU's vector path (the paper's NPU
    /// has BN/ReLU/maxpooling units, Fig. 13): streams the input once at
    /// one element per lane per cycle across `cols` lanes.
    pub fn reduce(&self, op: &ReduceOp) -> NpuCost {
        let elems = (op.groups * op.k * op.width) as u64;
        let cycles = elems / (self.cols as u64) + 1;
        let ms = cycles as f64 / (self.freq_ghz * 1e9) * 1e3;
        let mj = energy::pj_to_mj(elems as f64 * 4.0 * energy::SRAM_PJ_PER_BYTE)
            + energy::NPU_STATIC_W * ms;
        NpuCost { ms, mj, dram_bytes: 0 }
    }

    /// Peak MACs per cycle (for utilization reporting).
    pub fn macs_per_cycle(&self) -> usize {
        self.rows * self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_model_lower_bound_is_work_over_array() {
        // Cycles can never beat macs / (rows·cols).
        let c = NpuConfig::default();
        for (m, k, n) in [(16, 16, 16), (1024, 3, 64), (16384, 64, 128), (1, 256, 512)] {
            let cycles = c.matmul_cycles(m, k, n);
            let ideal = (m * k * n) as u64 / (c.macs_per_cycle() as u64);
            assert!(cycles >= ideal.max(1), "({m},{k},{n}): {cycles} < {ideal}");
        }
    }

    #[test]
    fn perfectly_tiled_matmul_is_near_ideal() {
        let c = NpuConfig::default();
        // Large k amortizes the fill/drain: utilization > 80 %.
        let cycles = c.matmul_cycles(1024, 512, 1024);
        let ideal = (1024u64 * 512 * 1024) / 256;
        assert!((cycles as f64) < (ideal as f64) * 1.2);
    }

    #[test]
    fn small_activations_stay_on_chip() {
        let c = NpuConfig::default();
        // Delayed-aggregation scale: 1024×3 → 1024×64 (under 768 KB).
        let cost = c.matmul(&MatMulOp { rows: 1024, inner: 3, cols: 64 });
        assert_eq!(cost.dram_bytes, 4 * 3 * 64, "only weights move");
    }

    #[test]
    fn large_activations_spill_to_dram() {
        let c = NpuConfig::default();
        // Original-aggregation scale: 16384×64 → 16384×128 = 12 MB.
        let op = MatMulOp { rows: 16384, inner: 64, cols: 128 };
        let cost = c.matmul(&op);
        assert!(cost.dram_bytes > 10 << 20, "8–32 MB activations must spill (Fig. 10)");
    }

    #[test]
    fn bigger_arrays_are_faster_on_resident_layers() {
        // The Fig. 21 effect: growing the array shrinks compute time...
        let small = NpuConfig { rows: 8, cols: 8, ..NpuConfig::default() };
        let big = NpuConfig { rows: 48, cols: 48, ..NpuConfig::default() };
        let resident = MatMulOp { rows: 1024, inner: 64, cols: 128 };
        assert!(big.matmul(&resident).ms < small.matmul(&resident).ms / 4.0);
    }

    #[test]
    fn bigger_arrays_hit_the_memory_wall_on_spilling_layers() {
        // ...but spilling layers are floored by DRAM bandwidth, so a large
        // array is "more likely throttled by memory bandwidth" (§VII-F).
        let small = NpuConfig { rows: 8, cols: 8, ..NpuConfig::default() };
        let big = NpuConfig { rows: 48, cols: 48, ..NpuConfig::default() };
        let spilling = MatMulOp { rows: 16384, inner: 64, cols: 128 };
        let ratio = small.matmul(&spilling).ms / big.matmul(&spilling).ms;
        assert!(ratio < 36.0 / 4.0, "memory wall must cap the gain, ratio {ratio}");
        assert!(big.matmul(&spilling).ms <= small.matmul(&spilling).ms);
    }

    #[test]
    fn reduce_is_cheap_relative_to_matmul() {
        let c = NpuConfig::default();
        let r = c.reduce(&ReduceOp { groups: 512, k: 32, width: 128 });
        let m = c.matmul(&MatMulOp { rows: 16384, inner: 64, cols: 128 });
        assert!(r.ms < m.ms);
    }
}
