//! The Aggregation Unit (AU) — the paper's hardware contribution (§V-B).
//!
//! The AU executes delayed aggregation inside the NPU: it streams Neighbor
//! Index Table entries from a double-buffered SRAM, gathers the referenced
//! Point Feature Table rows from a 32-bank crossbar-free SRAM, max-reduces
//! them through a 33-input max unit into a shift register, and subtracts
//! the centroid's feature row. Bank conflicts are resolved by multi-round
//! issue; PFTs larger than the buffer are processed in column-major
//! partitions with the NIT re-streamed per partition (Fig. 15).
//!
//! This simulator replays *real* NITs, so conflict rounds reflect actual
//! neighbor index distributions (spatially sorted clouds have index
//! locality, which LSB interleaving converts into conflict-freedom — the
//! `ablations` bench quantifies this).

use crate::energy;
use mesorasi_core::trace::AggregateOp;

/// AU configuration (§VI: 64 KB / 32-bank PFT buffer, 12 KB double-buffered
/// NIT buffer, 1 GHz).
#[derive(Debug, Clone, Copy)]
pub struct AuConfig {
    /// Independently-addressed single-ported PFT banks.
    pub banks: usize,
    /// PFT buffer capacity, KB.
    pub pft_kb: usize,
    /// NIT buffer capacity per half (double-buffered), KB.
    pub nit_kb: usize,
    /// Clock, GHz.
    pub freq_ghz: f64,
}

impl Default for AuConfig {
    fn default() -> Self {
        AuConfig { banks: 32, pft_kb: 64, nit_kb: 12, freq_ghz: 1.0 }
    }
}

/// Result of simulating one aggregation on the AU.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuReport {
    /// Total cycles.
    pub cycles: u64,
    /// Latency, ms.
    pub ms: f64,
    /// Energy, mJ (SRAM + datapath + NIT DRAM traffic).
    pub mj: f64,
    /// Column partitions the PFT was split into.
    pub partitions: usize,
    /// Words read from the PFT buffer.
    pub pft_word_reads: u64,
    /// Fraction of PFT accesses issued in rounds after the first —
    /// "accesses to serve previous bank conflicts" (§VII-D reports 27 %).
    pub conflict_access_fraction: f64,
    /// Actual PFT-read time over the conflict-free ideal (§VII-D: 1.5×).
    pub time_vs_ideal: f64,
    /// NIT bytes fetched from DRAM (re-fetched once per partition when the
    /// NIT exceeds its buffer).
    pub nit_dram_bytes: u64,
    /// Total DRAM traffic attributable to the AU.
    pub dram_bytes: u64,
}

impl AuReport {
    /// AU energy including the DRAM energy of its NIT traffic — the
    /// quantity Fig. 22 sweeps. (Platform simulations instead use [`Self::mj`]
    /// plus global DRAM accounting to avoid double counting.)
    pub fn total_mj(&self) -> f64 {
        self.mj + energy::pj_to_mj(self.dram_bytes as f64 * energy::DRAM_PJ_PER_BYTE)
    }
}

impl AuConfig {
    /// Simulates one (fused) aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the op's table width is zero.
    pub fn simulate(&self, op: &AggregateOp) -> AuReport {
        assert!(op.width > 0, "aggregation width must be positive");
        let nit = &op.nit;
        let entries = nit.len() as u64;
        if entries == 0 {
            return AuReport::default();
        }
        let k = nit.k();

        // Column-major partitioning (Fig. 15): the buffer holds all rows of
        // a column slice.
        let table_bytes = op.working_set_bytes();
        let capacity = (self.pft_kb as u64) * 1024;
        let partitions = table_bytes.div_ceil(capacity).max(1) as usize;
        let cols_per_partition = op.width.div_ceil(partitions) as u64;

        // Per-entry conflict rounds from real indices: bank = row mod B.
        // Duplicate row indices within an entry (ball-query padding, §VI)
        // coalesce: the AGU compares addresses, and max is idempotent, so a
        // repeated row is read once.
        let mut occupancy = vec![0u32; self.banks];
        let mut scratch: Vec<usize> = Vec::new();
        let mut total_rounds: u64 = 0;
        let mut total_distinct_banks: u64 = 0;
        let mut total_unique_rows: u64 = 0;
        for e in 0..nit.len() {
            occupancy.fill(0);
            scratch.clear();
            scratch.extend_from_slice(nit.neighbors(e));
            scratch.sort_unstable();
            scratch.dedup();
            for &r in &scratch {
                occupancy[r % self.banks] += 1;
            }
            let rounds = occupancy.iter().copied().max().unwrap_or(0) as u64;
            let distinct = occupancy.iter().filter(|&&c| c > 0).count() as u64;
            total_rounds += rounds.max(1);
            total_distinct_banks += distinct;
            total_unique_rows += scratch.len() as u64;
        }

        // Cycles: each entry spends rounds × cols cycles streaming its
        // neighbors per partition; the centroid-row read and the
        // subtraction drain pipeline behind the max unit (+2 cycles/entry).
        let read_cycles: u64 = total_rounds * cols_per_partition * partitions as u64;
        let ideal_cycles: u64 = entries * cols_per_partition * partitions as u64;
        let cycles = read_cycles + 2 * entries * partitions as u64;

        // PFT accesses: every unique neighbor row read once per partition
        // column slice, plus the centroid row.
        let pft_word_reads = (total_unique_rows + entries) * cols_per_partition * partitions as u64;
        let conflict_access_fraction = if total_unique_rows == 0 {
            0.0
        } else {
            1.0 - (total_distinct_banks as f64) / (total_unique_rows as f64)
        };
        let _ = k;

        // NIT traffic: streamed once per partition. Entries still resident
        // in the buffer from the previous partition pass need no DRAM
        // re-fetch, so the re-fetched fraction shrinks as the buffer grows
        // (the Fig. 22 NIT-axis effect: "a smaller NIT requires more DRAM
        // accesses").
        let nit_bytes = nit.hardware_bytes() as u64;
        let capacity_bytes = (self.nit_kb as u64) * 1024;
        let retained = (capacity_bytes as f64 / nit_bytes.max(1) as f64).min(1.0);
        let refetch = nit_bytes as f64 * (partitions as u64 - 1) as f64 * (1.0 - retained);
        let nit_dram_bytes = nit_bytes + refetch as u64;
        let nit_sram_bytes = nit_bytes * partitions as u64;

        // PFT fill: the feature table arrives from the NPU global buffer
        // (never through DRAM, Fig. 13), once per partition pass.
        let pft_fill_bytes = table_bytes;
        // Output write-back to the global buffer.
        let out_bytes = entries * op.width as u64 * 4;

        let ms = cycles as f64 / (self.freq_ghz * 1e9) * 1e3;
        let datapath_ops = pft_word_reads + entries * op.width as u64;
        // DRAM energy for `dram_bytes` is charged by the SoC scheduler, not
        // here, so platform totals never double-count it.
        let mj = energy::pj_to_mj(
            (pft_word_reads * 4) as f64 * energy::SMALL_SRAM_PJ_PER_BYTE
                + nit_sram_bytes as f64 * energy::SMALL_SRAM_PJ_PER_BYTE
                + (pft_fill_bytes + out_bytes) as f64 * energy::SRAM_PJ_PER_BYTE
                + datapath_ops as f64 * 0.05,
        );

        AuReport {
            cycles,
            ms,
            mj,
            partitions,
            pft_word_reads,
            conflict_access_fraction,
            time_vs_ideal: read_cycles as f64 / ideal_cycles.max(1) as f64,
            nit_dram_bytes,
            dram_bytes: nit_dram_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_knn::NeighborIndexTable;

    /// NIT whose neighbor indices are consecutive — conflict-free under
    /// LSB interleaving with k ≤ banks.
    fn sequential_nit(entries: usize, k: usize) -> NeighborIndexTable {
        let mut nit = NeighborIndexTable::new(k);
        for e in 0..entries {
            let base = e * 7;
            let row: Vec<usize> = (0..k).map(|j| base + j).collect();
            nit.push_entry(base, &row);
        }
        nit
    }

    /// NIT where every neighbor maps to the same bank — worst case.
    fn pathological_nit(entries: usize, k: usize, banks: usize) -> NeighborIndexTable {
        let mut nit = NeighborIndexTable::new(k);
        for e in 0..entries {
            let row: Vec<usize> = (0..k).map(|j| j * banks).collect();
            nit.push_entry(e, &row);
        }
        nit
    }

    fn op(nit: NeighborIndexTable, table_rows: usize, width: usize) -> AggregateOp {
        let k = nit.k();
        AggregateOp { nit, table_rows, width, rows_per_entry: k + 1, fused_reduce: true }
    }

    #[test]
    fn sequential_indices_are_conflict_free() {
        let au = AuConfig::default();
        let r = au.simulate(&op(sequential_nit(128, 32), 1024, 16));
        assert_eq!(r.time_vs_ideal, 1.0, "consecutive rows hit distinct banks");
        assert!(r.conflict_access_fraction.abs() < 1e-9);
    }

    #[test]
    fn pathological_indices_serialize_fully() {
        let au = AuConfig::default();
        let k = 16;
        let r = au.simulate(&op(pathological_nit(64, k, au.banks), 1024, 8));
        assert!((r.time_vs_ideal - k as f64).abs() < 1e-9, "all rows in one bank ⇒ k rounds");
    }

    #[test]
    fn k_larger_than_banks_needs_multiple_rounds() {
        let au = AuConfig::default();
        let r = au.simulate(&op(sequential_nit(32, 64), 1024, 8));
        // 64 consecutive rows over 32 banks ⇒ exactly 2 per bank.
        assert!((r.time_vs_ideal - 2.0).abs() < 1e-9);
    }

    #[test]
    fn partitioning_kicks_in_beyond_buffer_capacity() {
        let au = AuConfig::default();
        // 1024 rows × 128 cols × 4 B = 512 KB over a 64 KB buffer ⇒ 8 parts.
        let r = au.simulate(&op(sequential_nit(512, 32), 1024, 128));
        assert_eq!(r.partitions, 8);
        // A table that fits ⇒ 1 partition.
        let r2 = au.simulate(&op(sequential_nit(512, 32), 1024, 3));
        assert_eq!(r2.partitions, 1);
    }

    #[test]
    fn small_nit_buffer_pays_dram_refetch() {
        let big = AuConfig::default();
        let tiny = AuConfig { nit_kb: 3, ..AuConfig::default() };
        // 512 entries × 64 neighbors ≈ 50 KB NIT, 8 partitions.
        let a = big.simulate(&op(sequential_nit(512, 64), 2048, 128));
        let b = tiny.simulate(&op(sequential_nit(512, 64), 2048, 128));
        assert!(b.nit_dram_bytes > a.nit_dram_bytes);
        assert!(b.total_mj() > a.total_mj(), "Fig. 22: smaller NIT buffer costs energy");
    }

    #[test]
    fn smaller_pft_buffer_costs_energy() {
        // Fig. 22's other axis: more partitions ⇒ more NIT re-reads.
        let nominal = AuConfig::default();
        let tiny = AuConfig { pft_kb: 8, ..AuConfig::default() };
        let a = nominal.simulate(&op(sequential_nit(512, 32), 1024, 128));
        let b = tiny.simulate(&op(sequential_nit(512, 32), 1024, 128));
        assert!(b.partitions > a.partitions);
        assert!(b.total_mj() > a.total_mj());
    }

    #[test]
    fn empty_nit_is_free() {
        let au = AuConfig::default();
        let r = au.simulate(&op(NeighborIndexTable::new(4), 16, 8));
        assert_eq!(r.cycles, 0);
        assert_eq!(r.mj, 0.0);
    }

    #[test]
    fn realistic_morton_sorted_cloud_has_low_conflict_overhead() {
        // The §VII-D observation (≈27 % conflict accesses, 1.5× ideal time)
        // depends on spatial index locality. Build a real NIT from a
        // Morton-sorted cloud and check the overhead is mild.
        use mesorasi_knn::bruteforce;
        use mesorasi_pointcloud::{morton, sampling, shapes};
        let cloud = shapes::sample_shape(shapes::ShapeClass::Chair, 1024, 3);
        let sorted = morton::sort_cloud(&cloud);
        let centroids = sampling::random_indices(&sorted, 512, 1);
        let nit = bruteforce::knn_indices(&sorted, &centroids, 32);
        let au = AuConfig::default();
        let r = au.simulate(&op(nit, 1024, 128));
        assert!(
            r.time_vs_ideal < 3.0,
            "sorted cloud should stay well below worst case, got {}",
            r.time_vs_ideal
        );
        assert!(r.conflict_access_fraction < 0.5);
    }
}
