//! Platform assembly and the critical-path scheduler.
//!
//! Reproduces the paper's system model (§V-A, §VI):
//!
//! * neighbor search runs on the GPU (or the NSE when present),
//! * feature computation runs on the GPU (GPU-only platform) or the NPU,
//! * aggregation runs on the GPU, except on `MesorasiHw` where fused
//!   (delayed) aggregations run on the Aggregation Unit,
//! * latency composes serially except that delayed-aggregation traces
//!   overlap neighbor search with the hoisted MLP layers when they execute
//!   on different engines (the paper found TX2's GPU could not actually
//!   co-run both kernels, so the GPU-only platform never overlaps —
//!   §VII-C),
//! * energy = GPU + NPU(+AU) + DRAM, with DRAM charged per byte of traffic
//!   (§VI's accounting: input cloud, MLP kernels and spilled activations,
//!   NIT write + read).

use crate::au::AuConfig;
use crate::energy;
use crate::gpu::{GpuConfig, KernelCost};
use crate::npu::NpuConfig;
use crate::nse::NseConfig;
use mesorasi_core::trace::{ModuleTrace, NetworkTrace};
use mesorasi_core::Stage;

/// The evaluated platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Everything on the mobile GPU (the Fig. 4 / Fig. 17 platform).
    GpuOnly,
    /// The paper's baseline SoC: GPU for `N` and `A`, NPU for `F`,
    /// original execution order.
    GpuNpu,
    /// Delayed-aggregation in software: GPU for `N` and `A`, NPU for `F`,
    /// `N ∥ F` overlap (§VI "Variants").
    MesorasiSw,
    /// Delayed-aggregation with the AU: GPU for `N`, AU for `A`, NPU for
    /// `F`.
    MesorasiHw,
}

impl Platform {
    /// All platforms in baseline-to-proposed order.
    pub const ALL: [Platform; 4] =
        [Platform::GpuOnly, Platform::GpuNpu, Platform::MesorasiSw, Platform::MesorasiHw];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Platform::GpuOnly => "GPU",
            Platform::GpuNpu => "GPU+NPU baseline",
            Platform::MesorasiSw => "Mesorasi-SW",
            Platform::MesorasiHw => "Mesorasi-HW",
        }
    }

    fn uses_npu(self) -> bool {
        !matches!(self, Platform::GpuOnly)
    }

    fn uses_au(self) -> bool {
        matches!(self, Platform::MesorasiHw)
    }

    /// Whether `N` (GPU/NSE) and the hoisted MLP layers (NPU) can run
    /// concurrently — requires two engines.
    fn overlaps(self) -> bool {
        self.uses_npu()
    }
}

/// Full SoC configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocConfig {
    /// The GPU model.
    pub gpu: GpuConfig,
    /// The NPU model.
    pub npu: NpuConfig,
    /// The AU model (used by [`Platform::MesorasiHw`]).
    pub au: AuConfig,
    /// Optional neighbor search engine (§VII-E); when present, all
    /// platforms run `N` on it instead of the GPU.
    pub nse: Option<NseConfig>,
}

impl SocConfig {
    /// The §VII-E configuration: the same SoC plus the Tigris-style NSE.
    pub fn with_nse() -> Self {
        SocConfig { nse: Some(NseConfig::default()), ..SocConfig::default() }
    }
}

/// Simulated cost of one module on a platform.
#[derive(Debug, Clone, Default)]
pub struct ModuleSim {
    /// Module name from the trace.
    pub name: String,
    /// Raw (unscheduled) per-stage latencies, ms.
    pub search_ms: f64,
    /// MLP layers that may overlap with search.
    pub pre_ms: f64,
    /// Aggregation.
    pub agg_ms: f64,
    /// MLP layers after aggregation plus standalone reductions.
    pub post_ms: f64,
    /// Interpolation / miscellaneous.
    pub other_ms: f64,
    /// Scheduled (critical-path) latency of this module.
    pub critical_ms: f64,
    /// Energy by component, mJ: GPU, NPU, AU.
    pub gpu_mj: f64,
    /// NPU energy, mJ.
    pub npu_mj: f64,
    /// AU energy, mJ.
    pub au_mj: f64,
    /// DRAM traffic, bytes.
    pub dram_bytes: u64,
}

/// Simulation result for one network on one platform.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Network name.
    pub network: String,
    /// Platform simulated.
    pub platform: Platform,
    /// Per-module costs.
    pub modules: Vec<ModuleSim>,
}

impl SimReport {
    /// End-to-end latency (scheduled), ms.
    pub fn total_ms(&self) -> f64 {
        self.modules.iter().map(|m| m.critical_ms).sum()
    }

    /// Raw time spent in a stage (unscheduled, as Figs. 5/11/12 report).
    pub fn stage_ms(&self, stage: Stage) -> f64 {
        self.modules
            .iter()
            .map(|m| match stage {
                Stage::NeighborSearch => m.search_ms,
                Stage::Aggregation => m.agg_ms,
                Stage::FeatureCompute => m.pre_ms + m.post_ms,
                Stage::Other => m.other_ms,
            })
            .sum()
    }

    /// Total energy, mJ (components + DRAM).
    pub fn total_mj(&self) -> f64 {
        let component: f64 = self.modules.iter().map(|m| m.gpu_mj + m.npu_mj + m.au_mj).sum();
        component + self.dram_mj()
    }

    /// DRAM energy, mJ.
    pub fn dram_mj(&self) -> f64 {
        let bytes: u64 = self.modules.iter().map(|m| m.dram_bytes).sum();
        energy::pj_to_mj(bytes as f64 * energy::DRAM_PJ_PER_BYTE)
    }

    /// Total DRAM traffic, bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.modules.iter().map(|m| m.dram_bytes).sum()
    }

    /// Latency speedup of this report relative to `baseline`.
    pub fn speedup_vs(&self, baseline: &SimReport) -> f64 {
        baseline.total_ms() / self.total_ms()
    }

    /// Energy reduction (%) relative to `baseline`.
    pub fn energy_reduction_vs(&self, baseline: &SimReport) -> f64 {
        (1.0 - self.total_mj() / baseline.total_mj()) * 100.0
    }
}

fn simulate_module(m: &ModuleTrace, platform: Platform, cfg: &SocConfig) -> ModuleSim {
    let gpu = &cfg.gpu;
    let npu = &cfg.npu;
    let mut sim = ModuleSim { name: m.name.clone(), ..ModuleSim::default() };

    // --- neighbor search ---------------------------------------------------
    if let Some(search) = &m.search {
        let gpu_cost = gpu.search(search);
        let cost: KernelCost = match &cfg.nse {
            Some(nse) => nse.from_gpu(gpu_cost),
            None => gpu_cost,
        };
        sim.search_ms = cost.ms;
        sim.gpu_mj += cost.mj; // NSE energy is folded into this component
        sim.dram_bytes += cost.dram_bytes;
    }

    // --- hoisted MLP layers -------------------------------------------------
    for op in &m.mlp_pre {
        if platform.uses_npu() {
            let c = npu.matmul(op);
            sim.pre_ms += c.ms;
            sim.npu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        } else {
            let c = gpu.matmul(op);
            sim.pre_ms += c.ms;
            sim.gpu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        }
    }

    // --- aggregation ----------------------------------------------------------
    if let Some(agg) = &m.aggregate {
        if platform.uses_au() && agg.fused_reduce {
            let r = cfg.au.simulate(agg);
            sim.agg_ms = r.ms;
            sim.au_mj += r.mj;
            sim.dram_bytes += r.dram_bytes;
        } else {
            let c = gpu.aggregate(agg);
            sim.agg_ms = c.ms;
            sim.gpu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        }
    }

    // --- post-aggregation MLP layers and reduction ---------------------------
    for op in &m.mlp_post {
        if platform.uses_npu() {
            let c = npu.matmul(op);
            sim.post_ms += c.ms;
            sim.npu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        } else {
            let c = gpu.matmul(op);
            sim.post_ms += c.ms;
            sim.gpu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        }
    }
    if let Some(reduce) = &m.reduce {
        if platform.uses_npu() {
            let c = npu.reduce(reduce);
            sim.post_ms += c.ms;
            sim.npu_mj += c.mj;
        } else {
            let c = gpu.reduce(reduce);
            sim.post_ms += c.ms;
            sim.gpu_mj += c.mj;
            sim.dram_bytes += c.dram_bytes;
        }
    }

    // --- other ---------------------------------------------------------------
    if m.other_flops > 0 || m.other_bytes > 0 {
        let c = gpu.other(m.other_flops, m.other_bytes);
        sim.other_ms = c.ms;
        sim.gpu_mj += c.mj;
        sim.dram_bytes += c.dram_bytes;
    }

    // --- schedule --------------------------------------------------------------
    // Search and the hoisted layers overlap across engines; everything else
    // serializes (paper §IV: N→A→F serialization is what delayed
    // aggregation breaks).
    let head = if platform.overlaps() {
        sim.search_ms.max(sim.pre_ms)
    } else {
        sim.search_ms + sim.pre_ms
    };
    sim.critical_ms = head + sim.agg_ms + sim.post_ms + sim.other_ms;
    sim
}

/// Simulates `trace` on `platform`.
pub fn simulate(trace: &NetworkTrace, platform: Platform, cfg: &SocConfig) -> SimReport {
    SimReport {
        network: trace.name.clone(),
        platform,
        modules: trace.modules.iter().map(|m| simulate_module(m, platform, cfg)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_core::trace::{AggregateOp, MatMulOp, ReduceOp, SearchOp};
    use mesorasi_core::Strategy;
    use mesorasi_knn::NeighborIndexTable;

    fn nit(entries: usize, k: usize) -> NeighborIndexTable {
        let mut t = NeighborIndexTable::new(k);
        for e in 0..entries {
            let row: Vec<usize> = (0..k).map(|j| e + j).collect();
            t.push_entry(e, &row);
        }
        t
    }

    /// An original-strategy module trace (PointNet++ module-1 shaped).
    fn original_module() -> ModuleTrace {
        ModuleTrace {
            name: "sa1".into(),
            search: Some(SearchOp {
                queries: 512,
                candidates: 1024,
                dim: 3,
                k: 32,
                radius_query: true,
            }),
            mlp_pre: vec![],
            aggregate: Some(AggregateOp {
                nit: nit(512, 32),
                table_rows: 1024,
                width: 3,
                rows_per_entry: 33,
                fused_reduce: false,
            }),
            mlp_post: vec![
                MatMulOp { rows: 512 * 32, inner: 3, cols: 64 },
                MatMulOp { rows: 512 * 32, inner: 64, cols: 64 },
                MatMulOp { rows: 512 * 32, inner: 64, cols: 128 },
            ],
            reduce: Some(ReduceOp { groups: 512, k: 32, width: 128 }),
            other_flops: 0,
            other_bytes: 0,
        }
    }

    /// The same module under delayed aggregation.
    fn delayed_module() -> ModuleTrace {
        ModuleTrace {
            name: "sa1".into(),
            search: Some(SearchOp {
                queries: 512,
                candidates: 1024,
                dim: 3,
                k: 32,
                radius_query: true,
            }),
            mlp_pre: vec![
                MatMulOp { rows: 1024, inner: 3, cols: 64 },
                MatMulOp { rows: 1024, inner: 64, cols: 64 },
                MatMulOp { rows: 1024, inner: 64, cols: 128 },
            ],
            aggregate: Some(AggregateOp {
                nit: nit(512, 32),
                table_rows: 1024,
                width: 128,
                rows_per_entry: 33,
                fused_reduce: true,
            }),
            mlp_post: vec![],
            reduce: None,
            other_flops: 0,
            other_bytes: 0,
        }
    }

    fn trace_of(module: ModuleTrace, strategy: Strategy) -> NetworkTrace {
        let mut t = NetworkTrace::new("test", strategy);
        t.modules.push(module);
        t
    }

    #[test]
    fn delayed_on_gpu_beats_original_on_gpu() {
        // Fig. 17: the algorithm alone speeds up the GPU platform.
        let cfg = SocConfig::default();
        let orig =
            simulate(&trace_of(original_module(), Strategy::Original), Platform::GpuOnly, &cfg);
        let del = simulate(&trace_of(delayed_module(), Strategy::Delayed), Platform::GpuOnly, &cfg);
        assert!(
            del.total_ms() < orig.total_ms(),
            "delayed {} should beat original {}",
            del.total_ms(),
            orig.total_ms()
        );
        assert!(del.total_mj() < orig.total_mj());
    }

    #[test]
    fn gpu_npu_baseline_beats_gpu_only() {
        // §VII-D: the baseline is ~2× faster than GPU-only.
        let cfg = SocConfig::default();
        let t = trace_of(original_module(), Strategy::Original);
        let gpu = simulate(&t, Platform::GpuOnly, &cfg);
        let base = simulate(&t, Platform::GpuNpu, &cfg);
        assert!(base.total_ms() < gpu.total_ms());
        assert!(base.total_mj() < gpu.total_mj());
    }

    #[test]
    fn mesorasi_hw_accelerates_aggregation() {
        // Fig. 19b: the AU executes aggregation much faster than the GPU.
        let cfg = SocConfig::default();
        let t = trace_of(delayed_module(), Strategy::Delayed);
        let sw = simulate(&t, Platform::MesorasiSw, &cfg);
        let hw = simulate(&t, Platform::MesorasiHw, &cfg);
        assert!(hw.modules[0].agg_ms < sw.modules[0].agg_ms / 2.0);
        assert!(hw.total_ms() < sw.total_ms());
    }

    #[test]
    fn overlap_hides_the_shorter_of_n_and_f() {
        let cfg = SocConfig::default();
        let t = trace_of(delayed_module(), Strategy::Delayed);
        let r = simulate(&t, Platform::MesorasiSw, &cfg);
        let m = &r.modules[0];
        let expected = m.search_ms.max(m.pre_ms) + m.agg_ms + m.post_ms;
        assert!((m.critical_ms - expected).abs() < 1e-9);
        assert!(m.critical_ms < m.search_ms + m.pre_ms + m.agg_ms + m.post_ms);
    }

    #[test]
    fn gpu_only_never_overlaps() {
        // §VII-C: concurrent kernels do not co-run on the TX2 GPU.
        let cfg = SocConfig::default();
        let t = trace_of(delayed_module(), Strategy::Delayed);
        let r = simulate(&t, Platform::GpuOnly, &cfg);
        let m = &r.modules[0];
        assert!((m.critical_ms - (m.search_ms + m.pre_ms + m.agg_ms)).abs() < 1e-9);
    }

    #[test]
    fn nse_removes_the_search_bottleneck() {
        // Fig. 20: with the NSE the remaining bottleneck shifts.
        let plain = SocConfig::default();
        let with_nse = SocConfig::with_nse();
        let t = trace_of(delayed_module(), Strategy::Delayed);
        let a = simulate(&t, Platform::MesorasiHw, &plain);
        let b = simulate(&t, Platform::MesorasiHw, &with_nse);
        assert!(b.modules[0].search_ms < a.modules[0].search_ms / 30.0);
        assert!(b.total_ms() < a.total_ms());
    }

    #[test]
    fn stage_accounting_sums_to_components() {
        let cfg = SocConfig::default();
        let t = trace_of(original_module(), Strategy::Original);
        let r = simulate(&t, Platform::GpuOnly, &cfg);
        let sum: f64 = Stage::ALL.iter().map(|&s| r.stage_ms(s)).sum();
        let m = &r.modules[0];
        assert!((sum - (m.search_ms + m.pre_ms + m.agg_ms + m.post_ms + m.other_ms)).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_free() {
        let cfg = SocConfig::default();
        let t = NetworkTrace::new("empty", Strategy::Original);
        let r = simulate(&t, Platform::MesorasiHw, &cfg);
        assert_eq!(r.total_ms(), 0.0);
        assert_eq!(r.total_mj(), 0.0);
    }
}
