//! The TCP server: accept loop, per-connection reader/writer threads, and
//! the wiring from sockets into the batching [scheduler](crate::scheduler).
//!
//! Connection lifecycle: on accept the server immediately sends
//! [`Frame::Hello`] (version, domain, native input size, and the hard
//! per-request point limit), then reads
//! frames until EOF. Each [`Frame::Infer`] is submitted to the scheduler;
//! replies flow back through a per-connection channel drained by a writer
//! thread, so slow dispatches never block the reader and responses from a
//! coalesced batch interleave correctly across connections. A malformed
//! frame gets a typed [`ErrorCode::Malformed`] reply and closes the
//! connection — the byte stream can no longer be trusted after a framing
//! error.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ServerStats, MAX_POINTS, PROTOCOL_VERSION,
};
use crate::scheduler::{Job, Scheduler, SchedulerConfig};
use mesorasi_networks::Session;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Server knobs. `addr` takes the usual `host:port` form; port 0 binds an
/// ephemeral port (read it back from [`Server::local_addr`]).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (default `127.0.0.1:0`).
    pub addr: String,
    /// Scheduler knobs: queue bound, batch ceiling, dispatcher count.
    pub scheduler: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { addr: "127.0.0.1:0".into(), scheduler: SchedulerConfig::default() }
    }
}

/// Tracks live connections so shutdown can unblock readers parked in
/// `read_exact` — no read timeouts means no mid-frame resync hazard, so
/// instead we `Shutdown::Both` every live socket.
#[derive(Default)]
struct ConnTable {
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
}

/// A running server. Dropping it *without* calling [`Server::shutdown`]
/// leaks the listener thread for the process lifetime; long-lived binaries
/// should shut down explicitly.
pub struct Server {
    addr: std::net::SocketAddr,
    stopping: Arc<AtomicBool>,
    scheduler: Arc<Scheduler>,
    conns: Arc<ConnTable>,
    accept_thread: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `config.addr`, starts the scheduler and accept loop, and
    /// returns immediately; inference runs on `session`'s worker pool.
    pub fn spawn(session: Arc<Session>, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::start(Arc::clone(&session), config.scheduler));
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnTable::default());

        let hello = Frame::Hello {
            version: PROTOCOL_VERSION,
            domain: session.domain(),
            input_points: session.network().input_points() as u32,
            max_points: MAX_POINTS,
        };

        let accept_thread = {
            let scheduler = Arc::clone(&scheduler);
            let stopping = Arc::clone(&stopping);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new().name("mesorasi-accept".into()).spawn(move || {
                let mut handlers = Vec::new();
                for incoming in listener.incoming() {
                    if stopping.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = match incoming {
                        Ok(s) => s,
                        Err(_) => continue,
                    };
                    let conn_id = conns.next_id.fetch_add(1, Ordering::Relaxed);
                    if let Ok(clone) = stream.try_clone() {
                        lock(&conns.streams).insert(conn_id, clone);
                    }
                    let scheduler = Arc::clone(&scheduler);
                    let conns = Arc::clone(&conns);
                    let hello = hello.clone();
                    let handler = std::thread::Builder::new()
                        .name(format!("mesorasi-conn-{conn_id}"))
                        .spawn(move || {
                            handle_connection(stream, hello, &scheduler);
                            lock(&conns.streams).remove(&conn_id);
                        })
                        .expect("spawn connection handler");
                    handlers.push(handler);
                }
                handlers
            })?
        };

        Ok(Server { addr, stopping, scheduler, conns, accept_thread: Some(accept_thread) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Current server counters (same numbers a client gets from
    /// [`Frame::Stats`]).
    pub fn stats(&self) -> ServerStats {
        self.scheduler.stats()
    }

    /// Stops accepting, fails queued work as `Unavailable`, closes live
    /// connections, and joins every thread. Idempotent.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept_thread) = self.accept_thread.take() else { return };
        self.stopping.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Unblock readers parked mid-`read_exact`.
        for (_, stream) in lock(&self.conns.streams).iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers = accept_thread.join().unwrap_or_default();
        for h in handlers {
            let _ = h.join();
        }
        // Scheduler last: connection readers may submit right up until
        // their handlers finish.
        self.scheduler.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs one connection to completion: greet, then read frames and route
/// them, with a dedicated writer thread draining the reply channel.
fn handle_connection(stream: TcpStream, hello: Frame, scheduler: &Scheduler) {
    let _ = stream.set_nodelay(true);
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("mesorasi-conn-writer".into())
        .spawn(move || writer_loop(writer_stream, &rx))
        .expect("spawn connection writer");

    if tx.send(hello).is_ok() {
        let mut reader = BufReader::new(stream);
        loop {
            match read_frame(&mut reader) {
                Ok(Frame::Infer { id, cloud }) => {
                    scheduler.submit(Job { id, cloud, reply: tx.clone() });
                }
                Ok(Frame::Stats) => {
                    if tx.send(Frame::StatsResult(scheduler.stats())).is_err() {
                        break;
                    }
                }
                Ok(_) => {
                    // A server-to-client frame arriving at the server is a
                    // confused or hostile peer; same treatment as any
                    // malformed byte stream.
                    scheduler.note_malformed();
                    let _ = tx.send(Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        message: "unexpected server-to-client frame kind".into(),
                    });
                    break;
                }
                Err(e) if e.is_malformed() => {
                    scheduler.note_malformed();
                    let _ = tx.send(Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        message: e.to_string(),
                    });
                    break;
                }
                Err(_) => break, // EOF or socket failure: just close.
            }
        }
    }

    // Dropping our sender lets the writer finish once in-flight jobs have
    // replied (each queued Job holds a sender clone until dispatched).
    drop(tx);
    let _ = writer.join();
}

/// Drains the reply channel onto the socket, batching flushes: frames that
/// are already queued go out under one flush.
fn writer_loop(stream: TcpStream, rx: &mpsc::Receiver<Frame>) {
    let mut w = BufWriter::new(stream);
    'conn: while let Ok(mut frame) = rx.recv() {
        loop {
            if write_frame(&mut w, &frame).is_err() {
                break 'conn;
            }
            match rx.try_recv() {
                Ok(next) => frame = next,
                Err(_) => break,
            }
        }
        if w.flush().is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use mesorasi_networks::{NetworkKind, SessionBuilder};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn serve_small(kind: NetworkKind) -> Server {
        let session = Arc::new(SessionBuilder::from_kind(kind).classes(4).workers(2).build());
        Server::spawn(session, ServerConfig::default()).expect("bind ephemeral port")
    }

    #[test]
    fn serves_inference_over_a_socket() {
        let server = serve_small(NetworkKind::PointNetPPClassification);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let n = client.input_points() as usize;
        let cloud = sample_shape(ShapeClass::Chair, n, 7);
        let inference = client.infer(1, &cloud).expect("inference served");
        let logits = inference.as_classification().expect("classification domain");
        assert_eq!(logits.matrix().shape(), (1, 4));
        assert!(logits.scores().iter().all(|s| s.is_finite()));
        let stats = client.stats().expect("stats frame");
        assert_eq!(stats.served, 1);
        assert_eq!(stats.shed, 0);
        server.shutdown();
    }

    #[test]
    fn detection_results_cross_the_wire_with_both_matrices() {
        let server = serve_small(NetworkKind::FPointNet);
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let n = client.input_points() as usize;
        let cloud = sample_shape(ShapeClass::Car, n, 3);
        let inference = client.infer(2, &cloud).expect("inference served");
        match inference {
            mesorasi_networks::Inference::Detection(boxes) => {
                assert_eq!(boxes.seg_logits().rows(), n);
                assert_eq!(boxes.params().shape(), (1, 7));
            }
            other => panic!("expected detection, got {:?}", other.domain()),
        }
        server.shutdown();
    }

    #[test]
    fn served_results_match_local_inference_bit_for_bit() {
        let session = Arc::new(
            SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(4)
                .workers(2)
                .build(),
        );
        let server = Server::spawn(Arc::clone(&session), ServerConfig::default()).expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let n = client.input_points() as usize;
        let cloud = sample_shape(ShapeClass::Lamp, n, 11);
        let remote = client.infer(3, &cloud).expect("served");
        let local = session.infer(&cloud);
        assert_eq!(remote, local, "the wire must not perturb results");
        server.shutdown();
    }

    #[test]
    fn malformed_frames_get_a_typed_error_and_close_the_connection() {
        use std::io::Read;
        let server = serve_small(NetworkKind::PointNetPPClassification);
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        // Consume the hello.
        read_frame(&mut stream).expect("hello");
        // A valid length prefix framing an unknown kind byte.
        stream.write_all(&1u32.to_le_bytes()).expect("write");
        stream.write_all(&[0x6f]).expect("write");
        match read_frame(&mut stream) {
            Ok(Frame::Error { code: ErrorCode::Malformed, message, .. }) => {
                assert!(message.contains("0x6f"), "error names the bad kind: {message}");
            }
            other => panic!("expected a malformed error frame, got {other:?}"),
        }
        // The server hangs up after a framing error.
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).expect("clean EOF");
        assert!(rest.is_empty());
        assert_eq!(server.stats().malformed, 1);
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_pool_without_cross_talk() {
        let server = serve_small(NetworkKind::PointNetPPClassification);
        let addr = server.local_addr();
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let n = client.input_points() as usize;
                    for i in 0..5u64 {
                        let id = t * 100 + i;
                        let cloud = sample_shape(ShapeClass::Chair, n, t * 31 + i);
                        client.infer(id, &cloud).expect("served");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }
        let stats = server.stats();
        assert_eq!(stats.served, 20);
        assert_eq!(stats.shed, 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_clean_with_live_idle_connections() {
        let server = serve_small(NetworkKind::PointNetPPClassification);
        let _idle = Client::connect(server.local_addr()).expect("connect");
        // Returns rather than hanging on the parked reader.
        server.shutdown();
    }
}
