//! Network serving for Mesorasi point-cloud inference.
//!
//! The paper's end-to-end framing (HgPCN-style sensor → inference
//! pipelines, §VIII) assumes inference sits behind a stream of frames
//! arriving on a clock it does not control. This crate provides that
//! boundary: a long-lived TCP [`Server`] speaking a length-prefixed
//! binary [`protocol`], a batching [`scheduler`] with admission
//! control in front of a [`mesorasi_networks::Session`] pool, and a
//! [`Client`] plus paced sensor-[`replay`] harness on the other side.
//!
//! Design pillars, in scheduler terms:
//!
//! - **Adaptive micro-batching** — a dispatch coalesces the longest
//!   same-shape run at the queue head (up to `max_batch`) into one
//!   [`Session::infer_batch`](mesorasi_networks::Session::infer_batch)
//!   call. An idle server dispatches singles immediately; batching only
//!   emerges under backlog, where it pays.
//! - **Deterministic load shedding** — the queue is bounded; overflow
//!   sheds the *oldest* request and tells its client with a typed
//!   [`ErrorCode::Shed`] error. Nothing is ever dropped silently.
//! - **Zero dependencies** — `std` networking only; the wire format is a
//!   hand-rolled length-prefixed binary layout (see [`protocol`]).
//!
//! ```no_run
//! use mesorasi_networks::{NetworkKind, SessionBuilder};
//! use mesorasi_serve::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let session = Arc::new(SessionBuilder::from_kind(NetworkKind::DgcnnClassification).build());
//! let server = Server::spawn(session, ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! # let cloud = mesorasi_pointcloud::PointCloud::new();
//! let inference = client.infer(0, &cloud)?;
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::{quantile_us, replay, Client, ClientError, ReplayReport, Response};
pub use protocol::{
    ErrorCode, Frame, ProtocolError, ServerStats, MAX_FRAME_BYTES, MAX_POINTS, PROTOCOL_VERSION,
};
pub use scheduler::SchedulerConfig;
pub use server::{Server, ServerConfig};
