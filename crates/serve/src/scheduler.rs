//! Admission control and adaptive micro-batching over one session pool.
//!
//! Every connection's requests funnel into one bounded FIFO. A small team
//! of dispatch workers pops the queue and **coalesces the longest prefix
//! of same-shape requests** (up to `max_batch`) into a single
//! [`Session::infer_batch`] call — batching is purely opportunistic, so an
//! idle server adds zero artificial latency (a lone request dispatches
//! immediately with batch size 1), while a backlogged server amortizes
//! checkout and scheduling across the batch exactly when throughput needs
//! it.
//!
//! Admission control is **shed-oldest**: when the queue is at
//! `queue_depth`, the *oldest* queued request is dropped to make room and
//! its client is told so with a typed [`ErrorCode::Shed`] error — never a
//! silent drop. Oldest-first matches the sensor-stream model (HgPCN's
//! end-to-end framing): the newest frame is the one worth answering; a
//! stale frame's answer is worthless to a client that has already sent
//! two more.

use crate::protocol::{ErrorCode, Frame, ServerStats};
use mesorasi_networks::{Inference, Session};
use mesorasi_pointcloud::PointCloud;
use mesorasi_tensor::Matrix;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scheduler knobs; see the [module docs](self) for semantics.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Queued requests beyond which admission control sheds the oldest
    /// (default 64).
    pub queue_depth: usize,
    /// Most requests one engine dispatch may coalesce (default 8).
    /// Batching only ever coalesces a contiguous same-shape prefix — it
    /// never waits for stragglers.
    pub max_batch: usize,
    /// Dispatch worker threads (default 2). Each dispatch checks out one
    /// session engine, so more than `Session::workers` dispatchers just
    /// queue on engines.
    pub dispatchers: usize,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig { queue_depth: 64, max_batch: 8, dispatchers: 2 }
    }
}

/// One queued inference request: the sample plus the home connection's
/// outgoing-frame channel.
pub(crate) struct Job {
    pub id: u64,
    pub cloud: PointCloud,
    pub reply: mpsc::Sender<Frame>,
}

#[derive(Default)]
struct Counters {
    served: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
    batches: AtomicU64,
}

struct Shared {
    session: Arc<Session>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    open: AtomicBool,
    max_batch: usize,
    queue_depth: usize,
    counters: Counters,
}

/// The batching scheduler: a bounded queue plus dispatch workers. Created
/// by the server; exposed only through [`crate::server::Server`].
pub(crate) struct Scheduler {
    shared: Arc<Shared>,
    dispatchers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    pub(crate) fn start(session: Arc<Session>, config: SchedulerConfig) -> Scheduler {
        let shared = Arc::new(Shared {
            session,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            open: AtomicBool::new(true),
            max_batch: config.max_batch.max(1),
            queue_depth: config.queue_depth.max(1),
            counters: Counters::default(),
        });
        let dispatchers = (0..config.dispatchers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mesorasi-dispatch-{i}"))
                    .spawn(move || dispatch_loop(&shared))
                    .expect("spawn dispatcher")
            })
            .collect();
        Scheduler { shared, dispatchers: Mutex::new(dispatchers) }
    }

    /// Enqueues a request, shedding the oldest queued one on overflow.
    pub(crate) fn submit(&self, job: Job) {
        if !self.shared.open.load(Ordering::Acquire) {
            reject(&job, ErrorCode::Unavailable, "server is shutting down");
            return;
        }
        {
            let mut q = lock(&self.shared.queue);
            if q.len() >= self.shared.queue_depth {
                let oldest = q.pop_front().expect("depth >= 1 implies non-empty at cap");
                self.shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                reject(
                    &oldest,
                    ErrorCode::Shed,
                    "queue full: this (oldest) request was shed to admit a newer one",
                );
            }
            q.push_back(job);
        }
        self.shared.available.notify_one();
    }

    /// Counts one rejected-at-parse frame (the connection layer detected
    /// it; the scheduler only owns the counter).
    pub(crate) fn note_malformed(&self) {
        self.shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the server counters, including the session pool's
    /// NIT-cache traffic.
    pub(crate) fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        let cache = self.shared.session.cache_stats();
        ServerStats {
            served: c.served.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            malformed: c.malformed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            queue_depth: lock(&self.shared.queue).len() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        }
    }

    /// Stops accepting work, fails the backlog as `Unavailable`, and joins
    /// the dispatchers. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.shared.open.store(false, Ordering::Release);
        {
            let mut q = lock(&self.shared.queue);
            for job in q.drain(..) {
                reject(&job, ErrorCode::Unavailable, "server is shutting down");
            }
        }
        self.shared.available.notify_all();
        for d in lock(&self.dispatchers).drain(..) {
            let _ = d.join();
        }
    }
}

fn lock<'m, T>(m: &'m Mutex<T>) -> std::sync::MutexGuard<'m, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn reject(job: &Job, code: ErrorCode, message: &str) {
    // A dead reply channel means the connection is gone; nothing to tell.
    let _ = job.reply.send(Frame::Error { id: job.id, code, message: message.into() });
}

/// Pops one batch: the queue's front job plus the longest same-shape
/// prefix behind it, up to `max_batch`. Blocks while the queue is empty;
/// returns `None` at shutdown.
fn pop_batch(shared: &Shared) -> Option<Vec<Job>> {
    let mut q = lock(&shared.queue);
    loop {
        if let Some(first) = q.pop_front() {
            let n = first.cloud.len();
            let mut batch = vec![first];
            while batch.len() < shared.max_batch {
                match q.front() {
                    Some(next) if next.cloud.len() == n => {
                        batch.push(q.pop_front().expect("front exists"));
                    }
                    _ => break,
                }
            }
            return Some(batch);
        }
        if !shared.open.load(Ordering::Acquire) {
            return None;
        }
        q = shared.available.wait(q).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn dispatch_loop(shared: &Shared) {
    while let Some(batch) = pop_batch(shared) {
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        dispatch(shared, batch);
    }
}

/// Runs one coalesced batch and replies to every job. Inference panics
/// (poisoned engines recover on the next checkout) are contained here so
/// one bad request cannot kill a dispatcher.
fn dispatch(shared: &Shared, batch: Vec<Job>) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if batch.len() == 1 {
            // Fallible checkout: a would-be same-thread deadlock surfaces
            // as a typed CheckoutError instead of hanging the dispatcher.
            match shared.session.try_infer(&batch[0].cloud) {
                Ok(inference) => Ok(vec![inference]),
                Err(e) => Err(e.to_string()),
            }
        } else {
            let clouds: Vec<&PointCloud> = batch.iter().map(|j| &j.cloud).collect();
            Ok(shared.session.infer_batch(&clouds))
        }
    }));
    match outcome {
        Ok(Ok(inferences)) => {
            debug_assert_eq!(inferences.len(), batch.len());
            for (job, inference) in batch.iter().zip(inferences) {
                shared.counters.served.fetch_add(1, Ordering::Relaxed);
                let _ =
                    job.reply.send(Frame::Result { id: job.id, mats: inference_mats(inference) });
            }
        }
        Ok(Err(msg)) => {
            for job in &batch {
                reject(job, ErrorCode::Unavailable, &msg);
            }
        }
        Err(_) => {
            for job in &batch {
                reject(job, ErrorCode::Unavailable, "inference panicked on this batch");
            }
        }
    }
}

/// Flattens a domain-typed result into wire matrices (session-output
/// order; see [`crate::protocol::Frame::Result`]).
fn inference_mats(inference: Inference) -> Vec<Matrix> {
    match inference {
        Inference::Classification(l) => vec![l.into_matrix()],
        Inference::Segmentation(s) => vec![s.into_matrix()],
        Inference::Detection(d) => vec![d.seg_logits().clone(), d.params().clone()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesorasi_networks::{NetworkKind, SessionBuilder};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};

    fn tiny_session() -> Arc<Session> {
        Arc::new(
            SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(3)
                .workers(1)
                .build(),
        )
    }

    #[test]
    fn lone_requests_dispatch_without_waiting_for_a_batch() {
        let session = tiny_session();
        let n = session.network().input_points();
        let scheduler = Scheduler::start(session, SchedulerConfig::default());
        let (tx, rx) = mpsc::channel();
        scheduler.submit(Job { id: 5, cloud: sample_shape(ShapeClass::Chair, n, 1), reply: tx });
        match rx.recv_timeout(std::time::Duration::from_secs(30)).expect("reply arrives") {
            Frame::Result { id, mats } => {
                assert_eq!(id, 5);
                assert_eq!(mats.len(), 1);
            }
            other => panic!("expected a result, got {other:?}"),
        }
        let stats = scheduler.stats();
        assert_eq!((stats.served, stats.shed), (1, 0));
        scheduler.shutdown();
    }

    #[test]
    fn overflow_sheds_the_oldest_with_a_typed_error() {
        let session = tiny_session();
        let n = session.network().input_points();
        // One dispatcher, queue depth 2: stall the dispatcher with a first
        // job, then overfill the queue and watch the oldest queued job go.
        let scheduler = Scheduler::start(
            session,
            SchedulerConfig { queue_depth: 2, max_batch: 1, dispatchers: 1 },
        );
        let (tx, rx) = mpsc::channel();
        for id in 0..8u64 {
            scheduler.submit(Job {
                id,
                cloud: sample_shape(ShapeClass::Chair, n, id),
                reply: tx.clone(),
            });
        }
        drop(tx);
        let mut shed_ids = Vec::new();
        let mut ok_ids = Vec::new();
        while let Ok(frame) = rx.recv_timeout(std::time::Duration::from_secs(60)) {
            match frame {
                Frame::Error { id, code, message } => {
                    assert_eq!(code, ErrorCode::Shed, "id {id}: {message}");
                    assert!(!message.is_empty(), "shed errors must explain themselves");
                    shed_ids.push(id);
                }
                Frame::Result { id, .. } => ok_ids.push(id),
                other => panic!("unexpected frame {other:?}"),
            }
            if shed_ids.len() + ok_ids.len() == 8 {
                break;
            }
        }
        assert_eq!(shed_ids.len() + ok_ids.len(), 8, "every request gets a typed outcome");
        assert!(!shed_ids.is_empty(), "overflow must shed");
        // Shed-oldest: every shed id is smaller than the newest admitted id.
        let newest_ok = ok_ids.iter().max().expect("some requests succeed");
        for shed in &shed_ids {
            assert!(shed < newest_ok, "shed {shed} is older than served {newest_ok}");
        }
        let stats = scheduler.stats();
        assert_eq!(stats.shed as usize, shed_ids.len());
        assert_eq!(stats.served as usize, ok_ids.len());
        scheduler.shutdown();
    }

    #[test]
    fn same_shape_requests_coalesce_into_batches() {
        let session = tiny_session();
        let n = session.network().input_points();
        let scheduler = Scheduler::start(
            session,
            SchedulerConfig { queue_depth: 64, max_batch: 8, dispatchers: 1 },
        );
        // Stall dispatch long enough to build a backlog by submitting
        // everything before the dispatcher can drain: the first dispatch
        // compiles the plan (slow), the rest then coalesce.
        let (tx, rx) = mpsc::channel();
        let total = 12u64;
        for id in 0..total {
            scheduler.submit(Job {
                id,
                cloud: sample_shape(ShapeClass::Cup, n, 3),
                reply: tx.clone(),
            });
        }
        drop(tx);
        let mut got = 0;
        while got < total {
            match rx.recv_timeout(std::time::Duration::from_secs(60)).expect("reply") {
                Frame::Result { .. } => got += 1,
                other => panic!("unexpected frame {other:?}"),
            }
        }
        let stats = scheduler.stats();
        assert_eq!(stats.served, total);
        assert!(
            stats.batches < total,
            "same-shape backlog must coalesce: {} dispatches for {total} requests",
            stats.batches
        );
        scheduler.shutdown();
    }

    #[test]
    fn shutdown_rejects_late_submissions_as_unavailable() {
        let session = tiny_session();
        let n = session.network().input_points();
        let scheduler = Scheduler::start(session, SchedulerConfig::default());
        scheduler.shutdown();
        let (tx, rx) = mpsc::channel();
        scheduler.submit(Job { id: 1, cloud: sample_shape(ShapeClass::Chair, n, 1), reply: tx });
        match rx.recv().expect("typed rejection") {
            Frame::Error { code: ErrorCode::Unavailable, .. } => {}
            other => panic!("expected Unavailable, got {other:?}"),
        }
    }
}
