//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every frame is `u32 LE payload length | payload`, where the payload is
//! `u8 kind | body`. All integers are little-endian; floats are IEEE-754
//! `f32` bits. The framing layer enforces [`MAX_FRAME_BYTES`] before
//! buffering a payload, so a corrupt or hostile length prefix cannot make
//! the server allocate unboundedly.
//!
//! | kind | frame | direction | body |
//! |------|-------|-----------|------|
//! | 0x01 | [`Frame::Infer`] | client → server | `u64 id, u32 n, n×3 f32 xyz` |
//! | 0x02 | [`Frame::Stats`] | client → server | empty |
//! | 0x80 | [`Frame::Hello`] | server → client | `u16 version, u8 domain, u32 input_points, u32 max_points` |
//! | 0x81 | [`Frame::Result`] | server → client | `u64 id, u8 n_mats, {u32 rows, u32 cols, rows·cols f32}×` |
//! | 0x82 | [`Frame::Error`] | server → client | `u64 id, u8 code, u16 len, len UTF-8 bytes` |
//! | 0x83 | [`Frame::StatsResult`] | server → client | `8×u64` (see [`ServerStats`]) |
//!
//! Decoding is strict: unknown kinds, truncated or oversized bodies,
//! trailing bytes, non-finite coordinates, and undersized/oversized point
//! counts are all typed [`ProtocolError`]s — a server maps them to
//! [`ErrorCode::Malformed`] responses rather than guessing.

use mesorasi_networks::Domain;
use mesorasi_pointcloud::{Point3, PointCloud};
use mesorasi_tensor::Matrix;
use std::io::{Read, Write};

/// Protocol version spoken by this build; the server announces it in
/// [`Frame::Hello`] and clients refuse to proceed on mismatch.
///
/// History: v1 had no `max_points` in HELLO (clients learned the point
/// limit from a Malformed error); v2 announces it up front.
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard ceiling on one frame's payload (kind byte + body). Large enough
/// for paper-scale segmentation results, small enough that a corrupt
/// length prefix cannot balloon server memory.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Ceiling on points per inference request — matches the largest
/// paper-scale inputs with generous headroom.
pub const MAX_POINTS: u32 = 1 << 20;

/// Ceiling on matrices per result frame (detection returns 2).
const MAX_RESULT_MATS: u8 = 8;

/// Typed failure reported to a client instead of a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control dropped this request (oldest-first under queue
    /// overflow). Retry later or slow down.
    Shed,
    /// The request failed protocol validation; the connection closes after
    /// this error.
    Malformed,
    /// The server could not check out an engine or is shutting down.
    Unavailable,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Shed => 0,
            ErrorCode::Malformed => 1,
            ErrorCode::Unavailable => 2,
        }
    }

    fn from_byte(b: u8) -> Result<ErrorCode, ProtocolError> {
        match b {
            0 => Ok(ErrorCode::Shed),
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::Unavailable),
            _ => Err(ProtocolError::Malformed("unknown error code")),
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::Shed => "shed",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unavailable => "unavailable",
        };
        f.write_str(s)
    }
}

/// Server-side counters reported in [`Frame::StatsResult`]; all monotonic
/// since server start except `queue_depth` (an instantaneous snapshot).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered with a [`Frame::Result`].
    pub served: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Malformed frames rejected.
    pub malformed: u64,
    /// Engine dispatches (each serving 1..=max_batch coalesced requests).
    pub batches: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// Engine NIT-cache hits across the session pool.
    pub cache_hits: u64,
    /// Engine NIT-cache misses across the session pool.
    pub cache_misses: u64,
    /// Engine NIT-cache LRU evictions across the session pool.
    pub cache_evictions: u64,
}

/// One protocol frame. See the [module docs](self) for the wire layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Inference request: run the session on `cloud`, answer under `id`.
    Infer {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The sample to infer.
        cloud: PointCloud,
    },
    /// Server-counter request.
    Stats,
    /// Server greeting, sent once per connection before anything else.
    Hello {
        /// [`PROTOCOL_VERSION`] of the server.
        version: u16,
        /// Task domain of the served network, deciding result layout.
        domain: Domain,
        /// The served network's native input size (clients may send other
        /// sizes; same-size requests batch best).
        input_points: u32,
        /// The server's hard ceiling on points per request
        /// ([`MAX_POINTS`] for this build) — announced so clients can
        /// pre-check loaded frames instead of learning the limit from a
        /// Malformed error mid-stream.
        max_points: u32,
    },
    /// Successful inference: the session outputs as raw matrices (1 for
    /// classification/segmentation, 2 for detection).
    Result {
        /// The request's correlation id.
        id: u64,
        /// Output matrices in session-output order.
        mats: Vec<Matrix>,
    },
    /// Typed failure. `id` is 0 when no request could be attributed (e.g.
    /// an unparseable frame).
    Error {
        /// The request's correlation id, or 0.
        id: u64,
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Server-counter response.
    StatsResult(ServerStats),
}

/// Decode-side failure; the encode side is infallible.
#[derive(Debug)]
pub enum ProtocolError {
    /// Socket-level failure, including EOF mid-frame.
    Io(std::io::Error),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge(u32),
    /// The payload failed structural validation.
    Malformed(&'static str),
    /// Unknown frame-kind byte.
    UnknownKind(u8),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
            ProtocolError::TooLarge(len) => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            ProtocolError::Malformed(why) => write!(f, "malformed frame: {why}"),
            ProtocolError::UnknownKind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e)
    }
}

impl ProtocolError {
    /// True for errors a server should answer with
    /// [`ErrorCode::Malformed`] before closing the connection (as opposed
    /// to plain socket failures, which just close it).
    pub fn is_malformed(&self) -> bool {
        !matches!(self, ProtocolError::Io(_))
    }
}

fn domain_to_byte(d: Domain) -> u8 {
    match d {
        Domain::Classification => 0,
        Domain::Segmentation => 1,
        Domain::Detection => 2,
    }
}

fn domain_from_byte(b: u8) -> Result<Domain, ProtocolError> {
    match b {
        0 => Ok(Domain::Classification),
        1 => Ok(Domain::Segmentation),
        2 => Ok(Domain::Detection),
        _ => Err(ProtocolError::Malformed("unknown domain byte")),
    }
}

/// Appends one complete wire frame (length prefix included) to `out`.
pub fn encode(frame: &Frame, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]); // length backpatched below
    match frame {
        Frame::Infer { id, cloud } => {
            out.push(0x01);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(cloud.len() as u32).to_le_bytes());
            for p in cloud.points() {
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
                out.extend_from_slice(&p.z.to_le_bytes());
            }
        }
        Frame::Stats => out.push(0x02),
        Frame::Hello { version, domain, input_points, max_points } => {
            out.push(0x80);
            out.extend_from_slice(&version.to_le_bytes());
            out.push(domain_to_byte(*domain));
            out.extend_from_slice(&input_points.to_le_bytes());
            out.extend_from_slice(&max_points.to_le_bytes());
        }
        Frame::Result { id, mats } => {
            out.push(0x81);
            out.extend_from_slice(&id.to_le_bytes());
            assert!(mats.len() <= MAX_RESULT_MATS as usize, "result frame holds <= 8 matrices");
            out.push(mats.len() as u8);
            for m in mats {
                out.extend_from_slice(&(m.rows() as u32).to_le_bytes());
                out.extend_from_slice(&(m.cols() as u32).to_le_bytes());
                for v in m.as_slice() {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        Frame::Error { id, code, message } => {
            out.push(0x82);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(code.to_byte());
            let msg = message.as_bytes();
            let len = msg.len().min(u16::MAX as usize);
            out.extend_from_slice(&(len as u16).to_le_bytes());
            out.extend_from_slice(&msg[..len]);
        }
        Frame::StatsResult(s) => {
            out.push(0x83);
            for v in [
                s.served,
                s.shed,
                s.malformed,
                s.batches,
                s.queue_depth,
                s.cache_hits,
                s.cache_misses,
                s.cache_evictions,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    let payload_len = (out.len() - start - 4) as u32;
    assert!(payload_len <= MAX_FRAME_BYTES, "encoded frame exceeds MAX_FRAME_BYTES");
    out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
}

/// Strict little-endian cursor over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() < n {
            return Err(ProtocolError::Malformed("truncated body"));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn finish(self) -> Result<(), ProtocolError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::Malformed("trailing bytes after body"))
        }
    }
}

/// Decodes one payload (the bytes after the length prefix). Strict: every
/// byte must be consumed, every value validated.
pub fn decode(payload: &[u8]) -> Result<Frame, ProtocolError> {
    if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
        return Err(ProtocolError::TooLarge(payload.len() as u32));
    }
    let mut c = Cursor { buf: payload };
    let kind = c.u8().map_err(|_| ProtocolError::Malformed("empty payload"))?;
    let frame = match kind {
        0x01 => {
            let id = c.u64()?;
            let n = c.u32()?;
            if n == 0 {
                return Err(ProtocolError::Malformed("empty point cloud"));
            }
            if n > MAX_POINTS {
                return Err(ProtocolError::Malformed("point count exceeds MAX_POINTS"));
            }
            // The byte budget was checked against MAX_FRAME_BYTES above;
            // an `n` claiming more points than bytes is simply truncated.
            let mut points = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let (x, y, z) = (c.f32()?, c.f32()?, c.f32()?);
                if !(x.is_finite() && y.is_finite() && z.is_finite()) {
                    return Err(ProtocolError::Malformed("non-finite coordinate"));
                }
                points.push(Point3::new(x, y, z));
            }
            c.finish()?;
            Frame::Infer { id, cloud: PointCloud::from_points(points) }
        }
        0x02 => {
            c.finish()?;
            Frame::Stats
        }
        0x80 => {
            let version = c.u16()?;
            let domain = domain_from_byte(c.u8()?)?;
            let input_points = c.u32()?;
            let max_points = c.u32()?;
            c.finish()?;
            Frame::Hello { version, domain, input_points, max_points }
        }
        0x81 => {
            let id = c.u64()?;
            let n_mats = c.u8()?;
            if n_mats == 0 || n_mats > MAX_RESULT_MATS {
                return Err(ProtocolError::Malformed("result matrix count out of range"));
            }
            let mut mats = Vec::with_capacity(n_mats as usize);
            for _ in 0..n_mats {
                let rows = c.u32()? as usize;
                let cols = c.u32()? as usize;
                let cells = rows
                    .checked_mul(cols)
                    .filter(|&cells| cells as u64 <= MAX_FRAME_BYTES as u64 / 4)
                    .ok_or(ProtocolError::Malformed("matrix shape overflows"))?;
                let mut data = Vec::with_capacity(cells);
                for _ in 0..cells {
                    data.push(c.f32()?);
                }
                mats.push(Matrix::from_vec(rows, cols, data));
            }
            c.finish()?;
            Frame::Result { id, mats }
        }
        0x82 => {
            let id = c.u64()?;
            let code = ErrorCode::from_byte(c.u8()?)?;
            let len = c.u16()? as usize;
            let bytes = c.take(len)?;
            let message = std::str::from_utf8(bytes)
                .map_err(|_| ProtocolError::Malformed("error message is not UTF-8"))?
                .to_owned();
            c.finish()?;
            Frame::Error { id, code, message }
        }
        0x83 => {
            let s = ServerStats {
                served: c.u64()?,
                shed: c.u64()?,
                malformed: c.u64()?,
                batches: c.u64()?,
                queue_depth: c.u64()?,
                cache_hits: c.u64()?,
                cache_misses: c.u64()?,
                cache_evictions: c.u64()?,
            };
            c.finish()?;
            Frame::StatsResult(s)
        }
        other => return Err(ProtocolError::UnknownKind(other)),
    };
    Ok(frame)
}

/// Writes one frame to `w` (buffer the writer; this issues one `write_all`).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::new();
    encode(frame, &mut buf);
    w.write_all(&buf)
}

/// Reads one frame from `r`, enforcing [`MAX_FRAME_BYTES`] *before*
/// buffering the payload.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, ProtocolError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(ProtocolError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    decode(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(frame: Frame) {
        let mut wire = Vec::new();
        encode(&frame, &mut wire);
        let len = u32::from_le_bytes(wire[..4].try_into().expect("prefix")) as usize;
        assert_eq!(len, wire.len() - 4, "length prefix covers the payload exactly");
        assert_eq!(decode(&wire[4..]).expect("decodes"), frame);
        // And through the io path.
        let mut cursor = std::io::Cursor::new(&wire);
        assert_eq!(read_frame(&mut cursor).expect("reads"), frame);
    }

    #[test]
    fn all_frames_round_trip() {
        roundtrip(Frame::Infer {
            id: 42,
            cloud: PointCloud::from_points(vec![
                Point3::new(0.5, -1.25, 3.0),
                Point3::new(1.0, 2.0, -0.125),
            ]),
        });
        roundtrip(Frame::Stats);
        roundtrip(Frame::Hello {
            version: PROTOCOL_VERSION,
            domain: Domain::Detection,
            input_points: 1024,
            max_points: MAX_POINTS,
        });
        roundtrip(Frame::Result {
            id: 7,
            mats: vec![
                Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
                Matrix::from_vec(1, 7, vec![0.0; 7]),
            ],
        });
        roundtrip(Frame::Error {
            id: 9,
            code: ErrorCode::Shed,
            message: "queue full: oldest request dropped".into(),
        });
        roundtrip(Frame::StatsResult(ServerStats {
            served: 1,
            shed: 2,
            malformed: 3,
            batches: 4,
            queue_depth: 5,
            cache_hits: 6,
            cache_misses: 7,
            cache_evictions: 8,
        }));
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(matches!(decode(&[0x7f]), Err(ProtocolError::UnknownKind(0x7f))));
    }

    #[test]
    fn empty_payload_is_rejected() {
        assert!(matches!(decode(&[]), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn truncated_infer_is_rejected() {
        let frame = Frame::Infer {
            id: 1,
            cloud: PointCloud::from_points(vec![Point3::new(1.0, 2.0, 3.0)]),
        };
        let mut wire = Vec::new();
        encode(&frame, &mut wire);
        // Drop the last coordinate byte from the payload.
        let payload = &wire[4..wire.len() - 1];
        assert!(matches!(decode(payload), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut wire = Vec::new();
        encode(&Frame::Stats, &mut wire);
        let mut payload = wire[4..].to_vec();
        payload.push(0);
        assert!(matches!(decode(&payload), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn non_finite_coordinates_are_rejected() {
        // Hand-build an INFER payload carrying a NaN (the encoder cannot,
        // since PointCloud construction asserts finiteness in debug).
        let mut payload = vec![0x01];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&f32::NAN.to_le_bytes());
        payload.extend_from_slice(&0f32.to_le_bytes());
        payload.extend_from_slice(&0f32.to_le_bytes());
        assert!(matches!(decode(&payload), Err(ProtocolError::Malformed(_))));
    }

    #[test]
    fn zero_and_oversized_point_counts_are_rejected() {
        for n in [0u32, MAX_POINTS + 1] {
            let mut payload = vec![0x01];
            payload.extend_from_slice(&1u64.to_le_bytes());
            payload.extend_from_slice(&n.to_le_bytes());
            assert!(matches!(decode(&payload), Err(ProtocolError::Malformed(_))), "n={n}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(&wire);
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::TooLarge(_))));
    }

    #[test]
    fn eof_mid_frame_is_an_io_error() {
        let mut wire = Vec::new();
        encode(&Frame::Stats, &mut wire);
        wire.pop();
        let mut cursor = std::io::Cursor::new(&wire);
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn matrix_shape_overflow_is_rejected() {
        let mut payload = vec![0x81];
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(1);
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&payload), Err(ProtocolError::Malformed(_))));
    }
}
