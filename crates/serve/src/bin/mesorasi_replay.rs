//! `mesorasi-replay`: feed a recorded (or synthetic) frame sequence to a
//! running `mesorasi-serve` at a target rate and report latency.
//!
//! ```text
//! mesorasi-replay --addr 127.0.0.1:7077 [--frames 64] [--hz 30]
//!                 [--points N] [--dir PATH] [--seed N]
//! ```

use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
use mesorasi_pointcloud::PointCloud;
use mesorasi_serve::{replay, Client};

const USAGE: &str = "\
mesorasi-replay: replay a frame sequence against mesorasi-serve

USAGE:
    mesorasi-replay --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT   server to replay against (required)
    --frames N         synthetic frames to send (default 64; ignored with --dir)
    --hz RATE          target frame rate (default 30; 0 = as fast as possible)
    --points N         points per synthetic frame (default: the server's
                       native input size, read from its hello)
    --dir PATH         replay every .xyz/.ply file in PATH (sorted by name)
                       instead of synthesizing frames
    --seed N           synthetic-shape seed (default 0)
    -h, --help         print this help
";

struct Args {
    addr: String,
    frames: usize,
    hz: f64,
    points: Option<usize>,
    dir: Option<std::path::PathBuf>,
    seed: u64,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args =
        Args { addr: String::new(), frames: 64, hz: 30.0, points: None, dir: None, seed: 0 };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage_error(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--frames" => {
                let raw = value("--frames");
                args.frames = match raw.parse() {
                    Ok(n) if n > 0 => n,
                    _ => usage_error(&format!("--frames wants a positive integer, got '{raw}'")),
                };
            }
            "--hz" => {
                let raw = value("--hz");
                args.hz = match raw.parse::<f64>() {
                    Ok(hz) if hz >= 0.0 && hz.is_finite() => hz,
                    _ => usage_error(&format!("--hz wants a non-negative rate, got '{raw}'")),
                };
            }
            "--points" => {
                let raw = value("--points");
                args.points = match raw.parse() {
                    Ok(n) if n > 0 => Some(n),
                    _ => usage_error(&format!("--points wants a positive integer, got '{raw}'")),
                };
            }
            "--dir" => args.dir = Some(value("--dir").into()),
            "--seed" => {
                let raw = value("--seed");
                args.seed =
                    raw.parse().unwrap_or_else(|_| usage_error(&format!("--seed got '{raw}'")));
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag '{other}'")),
        }
    }
    if args.addr.is_empty() {
        usage_error("--addr is required");
    }
    args
}

/// Loads every .xyz/.ply in `dir`, sorted by file name.
fn load_dir(dir: &std::path::Path) -> Vec<PointCloud> {
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| usage_error(&format!("cannot read {}: {e}", dir.display())))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("xyz") | Some("ply")))
        .collect();
    paths.sort();
    if paths.is_empty() {
        usage_error(&format!("no .xyz/.ply files in {}", dir.display()));
    }
    paths
        .iter()
        .map(|p| {
            mesorasi_pointcloud::io::read_path(p)
                .unwrap_or_else(|e| usage_error(&format!("cannot load {}: {e}", p.display())))
        })
        .collect()
}

fn synthesize(frames: usize, points: usize, seed: u64) -> Vec<PointCloud> {
    // A rotating handful of classes: same shape size (so the scheduler can
    // batch), varied content (so the NIT cache sees realistic traffic).
    const CLASSES: [ShapeClass; 4] =
        [ShapeClass::Chair, ShapeClass::Car, ShapeClass::Lamp, ShapeClass::Monitor];
    (0..frames).map(|i| sample_shape(CLASSES[i % CLASSES.len()], points, seed + i as u64)).collect()
}

fn main() {
    let args = parse_args();
    let frames = match &args.dir {
        Some(dir) => load_dir(dir),
        None => {
            let points = args.points.unwrap_or_else(|| {
                let client = Client::connect(&args.addr).unwrap_or_else(|e| {
                    eprintln!("error: cannot reach {}: {e}", args.addr);
                    std::process::exit(1);
                });
                client.input_points() as usize
            });
            synthesize(args.frames, points, args.seed)
        }
    };
    eprintln!(
        "replaying {} frames at {} to {}",
        frames.len(),
        if args.hz > 0.0 { format!("{} Hz", args.hz) } else { "full speed".into() },
        args.addr,
    );

    let report = match replay(&args.addr, &frames, args.hz) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            std::process::exit(1);
        }
    };

    let ms = |q: f64| match report.latency_quantile_us(q) {
        Some(us) => format!("{:.3}", us as f64 / 1000.0),
        None => "-".into(),
    };
    println!(
        "sent {}  ok {}  shed {}  errored {}  in {:.2}s ({:.1} fps achieved)",
        report.sent,
        report.ok,
        report.shed,
        report.errored,
        report.elapsed.as_secs_f64(),
        report.sent as f64 / report.elapsed.as_secs_f64().max(1e-9),
    );
    println!("latency ms: p50 {}  p99 {}  p999 {}", ms(0.50), ms(0.99), ms(0.999));
    if report.shed > 0 {
        std::process::exit(3);
    }
}
