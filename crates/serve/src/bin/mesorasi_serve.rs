//! `mesorasi-serve`: long-lived inference server over the binary protocol.
//!
//! ```text
//! mesorasi-serve [--network pointnetpp-cls] [--addr 127.0.0.1:7077]
//!                [--workers N] [--classes N] [--paper]
//!                [--queue-depth N] [--max-batch N] [--dispatchers N]
//!                [--cache-cap N]
//! ```

use mesorasi_networks::{NetworkKind, SessionBuilder};
use mesorasi_serve::{Server, ServerConfig};
use std::sync::Arc;

const USAGE: &str = "\
mesorasi-serve: serve point-cloud inference over TCP

USAGE:
    mesorasi-serve [OPTIONS]

OPTIONS:
    --network NAME     network to serve (default pointnetpp-cls); one of
                       pointnetpp-cls, pointnetpp-seg, dgcnn-cls, dgcnn-seg,
                       fpointnet, ldgcnn, densepoint
    --addr HOST:PORT   bind address (default 127.0.0.1:7077; port 0 = ephemeral)
    --workers N        session engine pool size (default: host threads)
    --classes N        label-space size for small-scale builds (default 10)
    --paper            serve the paper-scale network instead of the small one
    --queue-depth N    admission-control queue bound (default 64); overflow
                       sheds the oldest request with a typed error
    --max-batch N      most same-shape requests one dispatch coalesces (default 8)
    --dispatchers N    dispatch worker threads (default 2)
    --cache-cap N      per-engine NIT sample-cache capacity (default 1024; 0 off)
    -h, --help         print this help
";

struct Args {
    network: NetworkKind,
    addr: String,
    workers: Option<usize>,
    classes: usize,
    paper: bool,
    queue_depth: usize,
    max_batch: usize,
    dispatchers: usize,
    cache_cap: Option<usize>,
}

fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        network: NetworkKind::PointNetPPClassification,
        addr: "127.0.0.1:7077".into(),
        workers: None,
        classes: 10,
        paper: false,
        queue_depth: 64,
        max_batch: 8,
        dispatchers: 2,
        cache_cap: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage_error(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--network" => {
                let name = value("--network");
                args.network = NetworkKind::from_cli_name(&name)
                    .unwrap_or_else(|| usage_error(&format!("unknown network '{name}'")));
            }
            "--addr" => args.addr = value("--addr"),
            "--workers" => args.workers = Some(parse_count("--workers", &value("--workers"))),
            "--classes" => args.classes = parse_count("--classes", &value("--classes")),
            "--paper" => args.paper = true,
            "--queue-depth" => {
                args.queue_depth = parse_count("--queue-depth", &value("--queue-depth"));
            }
            "--max-batch" => args.max_batch = parse_count("--max-batch", &value("--max-batch")),
            "--dispatchers" => {
                args.dispatchers = parse_count("--dispatchers", &value("--dispatchers"));
            }
            "--cache-cap" => {
                let raw = value("--cache-cap");
                let cap: usize = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("--cache-cap got '{raw}'")));
                args.cache_cap = Some(cap);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => usage_error(&format!("unknown flag '{other}'")),
        }
    }
    args
}

fn parse_count(flag: &str, raw: &str) -> usize {
    match raw.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{flag} wants a positive integer, got '{raw}'")),
    }
}

fn main() {
    let args = parse_args();
    let mut builder = SessionBuilder::from_kind(args.network).classes(args.classes);
    if args.paper {
        builder = builder.paper_scale();
    }
    if let Some(workers) = args.workers {
        builder = builder.workers(workers);
    }
    if let Some(cap) = args.cache_cap {
        builder = builder.sample_cache_cap(cap);
    }
    let session = Arc::new(builder.build());
    eprintln!(
        "serving {} ({}, {} input points, {} engine workers)",
        args.network.name(),
        session.domain().label(),
        session.network().input_points(),
        session.workers(),
    );

    let config = ServerConfig {
        addr: args.addr,
        scheduler: mesorasi_serve::SchedulerConfig {
            queue_depth: args.queue_depth,
            max_batch: args.max_batch,
            dispatchers: args.dispatchers,
        },
    };
    let server = match Server::spawn(session, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: could not start server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "listening on {} (queue depth {}, max batch {}, {} dispatchers)",
        server.local_addr(),
        args.queue_depth,
        args.max_batch,
        args.dispatchers,
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
