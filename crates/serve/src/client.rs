//! The client side: a blocking request/response [`Client`] and a paced
//! sensor-[`replay`] harness that feeds recorded frame sequences at a
//! target rate while measuring per-request latency.

use crate::protocol::{
    read_frame, write_frame, ErrorCode, Frame, ProtocolError, ServerStats, PROTOCOL_VERSION,
};
use mesorasi_networks::{Boxes3D, Domain, Inference, Logits, PerPointLabels};
use mesorasi_pointcloud::PointCloud;
use mesorasi_tensor::Matrix;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Wire-level failure (socket or framing).
    Protocol(ProtocolError),
    /// The server speaks a different protocol version.
    VersionMismatch {
        /// Version announced by the server.
        server: u16,
        /// Version this build speaks ([`PROTOCOL_VERSION`]).
        client: u16,
    },
    /// The server sent a frame that makes no sense here.
    UnexpectedFrame(&'static str),
    /// A frame to be sent exceeds the point limit the server announced in
    /// its hello, so the request would be refused as malformed and the
    /// connection closed; the client checks up front instead.
    FrameTooLarge {
        /// Index of the offending frame in the replay sequence.
        frame: usize,
        /// Points in that frame.
        points: usize,
        /// The server's announced per-request limit.
        max_points: u32,
    },
    /// The server answered a request with a typed error.
    Rejected {
        /// The request's correlation id.
        id: u64,
        /// Why it was rejected.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::VersionMismatch { server, client } => {
                write!(f, "server speaks protocol v{server}, this client v{client}")
            }
            ClientError::UnexpectedFrame(what) => write!(f, "unexpected frame: {what}"),
            ClientError::FrameTooLarge { frame, points, max_points } => {
                write!(
                    f,
                    "frame {frame} has {points} points, over the server's limit of {max_points}"
                )
            }
            ClientError::Rejected { id, code, message } => {
                write!(f, "request {id} rejected ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One server response to an inference request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded.
    Result {
        /// Echoed correlation id.
        id: u64,
        /// The rebuilt, domain-typed result.
        inference: Inference,
    },
    /// The request failed with a typed error (e.g. shed under load).
    Error {
        /// Echoed correlation id (0 if unattributable).
        id: u64,
        /// Why it failed.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
}

/// A blocking protocol client over one TCP connection.
///
/// [`Client::infer`] is the simple lock-step path; for pipelined traffic
/// send with [`Client::send_infer`] and collect with [`Client::recv`] —
/// the server replies in dispatch order, not necessarily send order.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    domain: Domain,
    input_points: u32,
    max_points: u32,
}

impl Client {
    /// Connects, reads the server's [`Frame::Hello`], and verifies the
    /// protocol version.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ProtocolError::Io)?;
        let _ = stream.set_nodelay(true);
        let writer = BufWriter::new(stream.try_clone().map_err(ProtocolError::Io)?);
        let mut reader = BufReader::new(stream);
        match read_frame(&mut reader)? {
            Frame::Hello { version, domain, input_points, max_points } => {
                if version != PROTOCOL_VERSION {
                    return Err(ClientError::VersionMismatch {
                        server: version,
                        client: PROTOCOL_VERSION,
                    });
                }
                Ok(Client { reader, writer, domain, input_points, max_points })
            }
            _ => Err(ClientError::UnexpectedFrame("server did not greet with a hello")),
        }
    }

    /// Task domain of the served network (decides the [`Inference`]
    /// variant results are rebuilt into).
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The served network's native input size; same-size requests batch
    /// best on the server.
    pub fn input_points(&self) -> u32 {
        self.input_points
    }

    /// The server's hard per-request point limit, announced in its hello.
    /// Requests above it would be rejected as malformed and close the
    /// connection, so check loaded frames against this first.
    pub fn max_points(&self) -> u32 {
        self.max_points
    }

    /// Sends one inference request without waiting for the response.
    pub fn send_infer(&mut self, id: u64, cloud: &PointCloud) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &Frame::Infer { id, cloud: cloud.clone() })?;
        use std::io::Write;
        self.writer.flush()?;
        Ok(())
    }

    /// Receives the next inference response (result or typed error).
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.reader)? {
            Frame::Result { id, mats } => {
                let inference = rebuild_inference(self.domain, mats)?;
                Ok(Response::Result { id, inference })
            }
            Frame::Error { id, code, message } => Ok(Response::Error { id, code, message }),
            Frame::StatsResult(_) => {
                Err(ClientError::UnexpectedFrame("stats reply amid inference"))
            }
            _ => Err(ClientError::UnexpectedFrame("non-response frame")),
        }
    }

    /// Lock-step inference: send, wait for this request's response, and
    /// surface a server-side rejection as [`ClientError::Rejected`].
    pub fn infer(&mut self, id: u64, cloud: &PointCloud) -> Result<Inference, ClientError> {
        self.send_infer(id, cloud)?;
        match self.recv()? {
            Response::Result { id: got, inference } => {
                if got != id {
                    return Err(ClientError::UnexpectedFrame("response id mismatch"));
                }
                Ok(inference)
            }
            Response::Error { id, code, message } => {
                Err(ClientError::Rejected { id, code, message })
            }
        }
    }

    /// Fetches the server counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        write_frame(&mut self.writer, &Frame::Stats)?;
        use std::io::Write;
        self.writer.flush()?;
        match read_frame(&mut self.reader)? {
            Frame::StatsResult(stats) => Ok(stats),
            _ => Err(ClientError::UnexpectedFrame("expected a stats reply")),
        }
    }
}

/// Rebuilds the domain-typed result from transported matrices, validating
/// the matrix count against the domain's layout.
fn rebuild_inference(domain: Domain, mats: Vec<Matrix>) -> Result<Inference, ClientError> {
    let mut mats = mats.into_iter();
    let inference = match domain {
        Domain::Classification => {
            let scores = mats.next().ok_or(ClientError::UnexpectedFrame("empty result"))?;
            Inference::Classification(Logits::new(scores))
        }
        Domain::Segmentation => {
            let logits = mats.next().ok_or(ClientError::UnexpectedFrame("empty result"))?;
            Inference::Segmentation(PerPointLabels::new(logits))
        }
        Domain::Detection => {
            let seg = mats.next().ok_or(ClientError::UnexpectedFrame("empty result"))?;
            let params = mats
                .next()
                .ok_or(ClientError::UnexpectedFrame("detection result needs 2 matrices"))?;
            Inference::Detection(Boxes3D::new(seg, params))
        }
    };
    if mats.next().is_some() {
        return Err(ClientError::UnexpectedFrame("extra matrices in result"));
    }
    Ok(inference)
}

/// What a [`replay`] run observed.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests answered with a result.
    pub ok: u64,
    /// Requests shed by server admission control.
    pub shed: u64,
    /// Requests failed with any other typed error.
    pub errored: u64,
    /// Per-request latency (send → response), microseconds, in completion
    /// order. Length is `ok + shed + errored`.
    pub latencies_us: Vec<u64>,
    /// Wall-clock from first send to last response.
    pub elapsed: Duration,
}

impl ReplayReport {
    /// Latency quantile `q` in `[0, 1]` over every completed request
    /// (nearest-rank); `None` when nothing completed.
    pub fn latency_quantile_us(&self, q: f64) -> Option<u64> {
        quantile_us(&self.latencies_us, q)
    }
}

/// Nearest-rank quantile over a latency sample, `q` clamped to `[0, 1]`.
pub fn quantile_us(latencies_us: &[u64], q: f64) -> Option<u64> {
    if latencies_us.is_empty() {
        return None;
    }
    let mut sorted = latencies_us.to_vec();
    sorted.sort_unstable();
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Replays a recorded frame sequence against a server at `hz` frames per
/// second (0 = as fast as possible), pipelining sends against receives the
/// way a live sensor would: capture timing never waits for inference, and
/// a dedicated reader thread timestamps each response as it arrives, so
/// latency is send → response, not send → end-of-replay.
///
/// Every request gets a typed outcome — the protocol never drops silently
/// — so the report's counters always sum to `sent`.
///
/// Loaded frames (e.g. from `.xyz`/`.ply` files) are validated against the
/// server's announced point limit before anything is sent: an oversized
/// frame returns [`ClientError::FrameTooLarge`] up front rather than a
/// mid-replay malformed error that kills the connection.
pub fn replay<A: ToSocketAddrs>(
    addr: A,
    frames: &[PointCloud],
    hz: f64,
) -> Result<ReplayReport, ClientError> {
    let client = Client::connect(addr)?;
    let max_points = client.max_points();
    for (frame, cloud) in frames.iter().enumerate() {
        if cloud.len() as u64 > u64::from(max_points) {
            return Err(ClientError::FrameTooLarge { frame, points: cloud.len(), max_points });
        }
    }
    let Client { reader, mut writer, .. } = client;
    let interval = if hz > 0.0 { Duration::from_secs_f64(1.0 / hz) } else { Duration::ZERO };

    let start = Instant::now();
    let total = frames.len() as u64;
    let in_flight: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));

    // The reader runs concurrently with the send schedule and stamps each
    // response the moment it is read. It owns the read half; it exits
    // after exactly `total` responses (every request is guaranteed a typed
    // outcome) or on a dead socket.
    let collector = {
        let in_flight = Arc::clone(&in_flight);
        std::thread::spawn(move || -> Result<ReplayReport, ClientError> {
            let mut reader = reader;
            let mut report = ReplayReport::default();
            for _ in 0..total {
                let (id, outcome) = match read_frame(&mut reader)? {
                    Frame::Result { id, .. } => (id, Outcome::Ok),
                    Frame::Error { id, code: ErrorCode::Shed, .. } => (id, Outcome::Shed),
                    Frame::Error { id, .. } => (id, Outcome::Err),
                    _ => return Err(ClientError::UnexpectedFrame("non-response frame in replay")),
                };
                let sent_at = in_flight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&id)
                    .ok_or(ClientError::UnexpectedFrame("response to unknown id"))?;
                report.latencies_us.push(sent_at.elapsed().as_micros() as u64);
                match outcome {
                    Outcome::Ok => report.ok += 1,
                    Outcome::Shed => report.shed += 1,
                    Outcome::Err => report.errored += 1,
                }
            }
            Ok(report)
        })
    };

    let send_result: Result<(), ClientError> = (|| {
        for (i, cloud) in frames.iter().enumerate() {
            let due = start + interval.mul_f64(i as f64);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let id = i as u64;
            // Register the send time before the bytes can hit the wire so
            // the reader never sees a response to an unknown id.
            in_flight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(id, Instant::now());
            write_frame(&mut writer, &Frame::Infer { id, cloud: cloud.clone() })?;
            use std::io::Write;
            writer.flush()?;
        }
        Ok(())
    })();
    if send_result.is_err() {
        // Unblock the reader: fewer than `total` requests made it out, so
        // it would otherwise wait forever for responses that cannot come.
        let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    }
    let collected = collector.join().expect("replay reader thread");
    send_result?;
    let mut report = collected?;
    report.sent = total;
    report.elapsed = start.elapsed();
    Ok(report)
}

enum Outcome {
    Ok,
    Shed,
    Err,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulerConfig;
    use crate::server::{Server, ServerConfig};
    use mesorasi_networks::{NetworkKind, SessionBuilder};
    use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
    use std::sync::Arc;

    #[test]
    fn replay_collects_every_outcome_and_measures_latency() {
        let session = Arc::new(
            SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(4)
                .workers(2)
                .build(),
        );
        let n = session.network().input_points();
        let server = Server::spawn(session, ServerConfig::default()).expect("bind");
        let frames: Vec<PointCloud> =
            (0..10).map(|i| sample_shape(ShapeClass::Monitor, n, i)).collect();
        let report = replay(server.local_addr(), &frames, 0.0).expect("replay");
        assert_eq!(report.sent, 10);
        assert_eq!(report.ok + report.shed + report.errored, 10);
        assert_eq!(report.shed + report.errored, 0, "an idle server sheds nothing");
        assert_eq!(report.latencies_us.len(), 10);
        assert!(report.latencies_us.iter().all(|&us| us > 0));
        let p50 = report.latency_quantile_us(0.50).expect("quantile");
        let p99 = report.latency_quantile_us(0.99).expect("quantile");
        assert!(p50 <= p99);
        server.shutdown();
    }

    #[test]
    fn replay_under_overload_reports_sheds_not_hangs() {
        let session = Arc::new(
            SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
                .classes(4)
                .workers(1)
                .build(),
        );
        let n = session.network().input_points();
        let server = Server::spawn(
            session,
            ServerConfig {
                scheduler: SchedulerConfig { queue_depth: 2, max_batch: 1, dispatchers: 1 },
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        // Full speed into a depth-2 queue: the first dispatch compiles the
        // plan, so a backlog forms and admission control must engage.
        let frames: Vec<PointCloud> =
            (0..32).map(|i| sample_shape(ShapeClass::Stool, n, i)).collect();
        let report = replay(server.local_addr(), &frames, 0.0).expect("replay");
        assert_eq!(report.ok + report.shed + report.errored, 32, "no silent drops");
        assert!(report.shed > 0, "overload must shed");
        assert_eq!(report.errored, 0);
        assert_eq!(server.stats().shed, report.shed);
        server.shutdown();
    }

    #[test]
    fn quantiles_use_nearest_rank() {
        let lat: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_us(&lat, 0.50), Some(50));
        assert_eq!(quantile_us(&lat, 0.99), Some(99));
        assert_eq!(quantile_us(&lat, 0.999), Some(100));
        assert_eq!(quantile_us(&lat, 0.0), Some(1));
        assert_eq!(quantile_us(&lat, 1.0), Some(100));
        assert_eq!(quantile_us(&[], 0.5), None);
    }

    #[test]
    fn replay_refuses_oversized_frames_before_sending() {
        use crate::protocol::{write_frame, Frame};
        use std::io::Write;
        // A fake server announcing a tiny point limit: replay must refuse
        // the oversized frame up front, without sending a single request.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let hello = Frame::Hello {
                version: PROTOCOL_VERSION,
                domain: Domain::Classification,
                input_points: 64,
                max_points: 16,
            };
            write_frame(&mut stream, &hello).expect("write hello");
            stream.flush().expect("flush");
            // Were replay to send anyway, this read would see bytes; EOF
            // proves the client hung up without transmitting a request.
            let mut rest = Vec::new();
            std::io::Read::read_to_end(&mut stream, &mut rest).expect("read");
            rest
        });
        let frames = vec![
            sample_shape(ShapeClass::Chair, 8, 1),
            sample_shape(ShapeClass::Chair, 32, 2), // over the limit of 16
        ];
        match replay(addr, &frames, 0.0) {
            Err(ClientError::FrameTooLarge { frame, points, max_points }) => {
                assert_eq!(frame, 1);
                assert_eq!(points, 32);
                assert_eq!(max_points, 16);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        let leaked = fake.join().expect("fake server");
        assert!(leaked.is_empty(), "replay sent bytes despite the oversized frame");
    }

    #[test]
    fn version_mismatch_is_refused() {
        use crate::protocol::{write_frame, Frame};
        use std::io::Write;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let hello = Frame::Hello {
                version: PROTOCOL_VERSION + 1,
                domain: Domain::Classification,
                input_points: 64,
                max_points: 1024,
            };
            write_frame(&mut stream, &hello).expect("write hello");
            stream.flush().expect("flush");
        });
        match Client::connect(addr) {
            Err(ClientError::VersionMismatch { server, client }) => {
                assert_eq!(server, PROTOCOL_VERSION + 1);
                assert_eq!(client, PROTOCOL_VERSION);
            }
            Err(other) => panic!("expected a version mismatch, got {other:?}"),
            Ok(_) => panic!("connect accepted a mismatched version"),
        }
        fake.join().expect("fake server");
    }
}
