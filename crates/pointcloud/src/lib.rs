//! Point-cloud data structures and synthetic dataset generators.
//!
//! This crate is the lowest-level substrate of the Mesorasi reproduction. It
//! provides:
//!
//! * [`Point3`] / [`Aabb`] — basic 3-D geometry,
//! * [`PointCloud`] — an unordered set of points with optional per-point
//!   features and labels,
//! * [`morton`] — Z-order (Morton) spatial sorting, which point-cloud
//!   pipelines use so that spatially-close points receive close indices
//!   (this matters for the bank-conflict behaviour of the Aggregation Unit
//!   simulated in `mesorasi-sim`),
//! * [`sampling`] — random and farthest-point sampling (the paper replaces
//!   FPS with random sampling for speed; we provide both),
//! * [`transform`] — augmentation used during training,
//! * [`shapes`], [`parts`], [`lidar`] — parametric synthetic datasets that
//!   stand in for ModelNet40 (classification), ShapeNet (part segmentation)
//!   and KITTI (detection). See `DESIGN.md` §1 for why the substitution
//!   preserves the behaviour the paper measures.
//!
//! # Example
//!
//! ```
//! use mesorasi_pointcloud::{shapes, sampling};
//!
//! let cloud = shapes::sample_shape(shapes::ShapeClass::Torus, 1024, 7);
//! assert_eq!(cloud.len(), 1024);
//! let idx = sampling::farthest_point_indices(&cloud, 128, 7);
//! assert_eq!(idx.len(), 128);
//! ```

#![forbid(unsafe_code)]

pub mod aabb;
pub mod cloud;
pub mod io;
pub mod lidar;
pub mod morton;
pub mod parts;
pub mod point;
pub mod sampling;
pub mod shapes;
pub mod transform;
pub mod voxel;

pub use aabb::Aabb;
pub use cloud::PointCloud;
pub use point::Point3;

/// Deterministic RNG used throughout the workspace so experiments are
/// reproducible run-to-run.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut rng = mesorasi_pointcloud::seeded_rng(42);
/// let a: f32 = rng.gen();
/// let b: f32 = mesorasi_pointcloud::seeded_rng(42).gen();
/// assert_eq!(a, b);
/// ```
pub fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
