//! Part-labelled shapes — the ShapeNet part-segmentation stand-in.
//!
//! The paper's segmentation networks (PointNet++ (s), DGCNN (s)) are
//! evaluated on ShapeNet \[19\] with the mIoU metric. This module reuses the
//! composite geometry from [`crate::shapes`] but labels every sampled point
//! with the index of the part it came from, giving a per-point segmentation
//! target with the same flavour as ShapeNet's (a handful of parts per
//! category, classes of very different sizes).

use crate::shapes::{class_parts, Part, ShapeClass};
use crate::PointCloud;
use rand::rngs::StdRng;

/// A segmentation category: a shape class plus the number of parts its
/// instances are labelled with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category {
    /// Geometry source.
    pub class: ShapeClass,
    /// Number of distinct part labels this category produces.
    pub part_count: u32,
    /// First global part id of this category (categories use disjoint label
    /// ranges, as in ShapeNet's 50-part label space).
    pub part_offset: u32,
}

/// The segmentation categories used by the synthetic ShapeNet stand-in.
///
/// Eight categories with 2–6 parts each, 30 parts total (ShapeNet has 16
/// categories / 50 parts; the reduced space keeps training cheap while
/// preserving the multi-part structure).
pub fn categories() -> Vec<Category> {
    let classes = [
        (ShapeClass::Airplane, 4u32),
        (ShapeClass::Chair, 6),
        (ShapeClass::Table, 5),
        (ShapeClass::Lamp, 3),
        (ShapeClass::Car, 6),
        (ShapeClass::Guitar, 3),
        (ShapeClass::Bottle, 3),
        (ShapeClass::Person, 6),
    ];
    let mut out = Vec::with_capacity(classes.len());
    let mut offset = 0;
    for (class, part_count) in classes {
        out.push(Category { class, part_count, part_offset: offset });
        offset += part_count;
    }
    out
}

/// Total number of part labels across all categories.
pub fn total_parts() -> u32 {
    categories().iter().map(|c| c.part_count).sum()
}

/// Samples one labelled instance of `category` with exactly `n` points.
///
/// Each point's label is `category.part_offset + part_index`, where
/// `part_index` is clamped to the category's part count (composite shapes
/// whose geometry has more primitives than the category has labels merge the
/// trailing primitives into the last part — e.g. a chair's four legs are one
/// "legs" part).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_labelled(category: Category, n: usize, seed: u64) -> PointCloud {
    assert!(n > 0, "cannot sample an empty instance");
    let mut rng =
        crate::seeded_rng(seed ^ (u64::from(category.class.label()) << 24) ^ 0x5eed_1abe1);
    let parts = class_parts(category.class, &mut rng);
    let cloud = sample_parts_labelled(&parts, category, n, &mut rng);
    // Normalize positions while keeping labels aligned.
    let labels = cloud.labels().expect("labelled").to_vec();
    let mut positions = PointCloud::from_points(cloud.points().to_vec());
    positions.normalize_to_unit_sphere();
    PointCloud::from_labelled_points(positions.points().to_vec(), labels)
}

fn sample_parts_labelled(
    parts: &[Part],
    category: Category,
    n: usize,
    rng: &mut StdRng,
) -> PointCloud {
    let areas: Vec<f32> = parts.iter().map(|p| p.primitive.area()).collect();
    let total: f32 = areas.iter().sum();
    let mut cloud = PointCloud::new();
    let mut assigned = 0usize;
    for (i, part) in parts.iter().enumerate() {
        let share = if i + 1 == parts.len() {
            n - assigned
        } else {
            (((areas[i] / total) * n as f32).round() as usize)
                .max(1)
                .min(n - assigned - (parts.len() - 1 - i))
        };
        let part_index = (i as u32).min(category.part_count - 1);
        let label = category.part_offset + part_index;
        for _ in 0..share {
            let p = part.primitive.sample_surface(rng);
            let (s, c) = part.yaw.sin_cos();
            let rotated =
                crate::Point3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z) + part.offset;
            cloud.push_labelled(rotated, label);
        }
        assigned += share;
    }
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_use_disjoint_label_ranges() {
        let cats = categories();
        let mut next = 0;
        for c in &cats {
            assert_eq!(c.part_offset, next);
            next += c.part_count;
        }
        assert_eq!(next, total_parts());
    }

    #[test]
    fn labelled_sample_has_one_label_per_point() {
        let cat = categories()[1]; // chair
        let cloud = sample_labelled(cat, 300, 3);
        assert_eq!(cloud.len(), 300);
        let labels = cloud.labels().expect("must be labelled");
        assert_eq!(labels.len(), 300);
        for &l in labels {
            assert!(l >= cat.part_offset && l < cat.part_offset + cat.part_count);
        }
    }

    #[test]
    fn labelled_sample_uses_multiple_parts() {
        let cat = categories()[0]; // airplane, 4 parts
        let cloud = sample_labelled(cat, 512, 9);
        let mut seen: Vec<u32> = cloud.labels().unwrap().to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() >= 2, "airplane should produce at least 2 part labels, got {seen:?}");
    }

    #[test]
    fn instances_are_normalized() {
        let cat = categories()[4]; // car
        let cloud = sample_labelled(cat, 256, 1);
        let max_norm = cloud.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
        assert!(max_norm <= 1.0 + 1e-5);
    }

    #[test]
    fn deterministic_per_seed() {
        let cat = categories()[2];
        assert_eq!(sample_labelled(cat, 128, 11), sample_labelled(cat, 128, 11));
        assert_ne!(sample_labelled(cat, 128, 11), sample_labelled(cat, 128, 12));
    }
}
