//! The [`PointCloud`] container.

use crate::{Aabb, Point3};

/// An unordered set of 3-D points with optional per-point integer labels
/// (used by the segmentation and detection tasks).
///
/// The paper represents a module's input as an `N_in × M_in` matrix whose
/// first module has `M_in = 3` (raw coordinates). `PointCloud` is that
/// initial representation; deeper feature matrices live in
/// `mesorasi-tensor::Matrix`.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::{PointCloud, Point3};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point3::new(0.0, 0.0, 0.0));
/// cloud.push(Point3::new(1.0, 0.0, 0.0));
/// assert_eq!(cloud.len(), 2);
/// assert_eq!(cloud.centroid(), Point3::new(0.5, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Point3>,
    labels: Option<Vec<u32>>,
}

impl PointCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new(), labels: None }
    }

    /// Creates an empty cloud with room for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        PointCloud { points: Vec::with_capacity(n), labels: None }
    }

    /// Creates a cloud from a vector of points.
    pub fn from_points(points: Vec<Point3>) -> Self {
        PointCloud { points, labels: None }
    }

    /// Creates a labelled cloud (per-point labels, e.g. part ids).
    ///
    /// # Panics
    ///
    /// Panics if `points` and `labels` have different lengths.
    pub fn from_labelled_points(points: Vec<Point3>, labels: Vec<u32>) -> Self {
        assert_eq!(points.len(), labels.len(), "one label per point required");
        PointCloud { points, labels: Some(labels) }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cloud holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points as a slice.
    #[inline]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Mutable access to the points (used by augmentation).
    #[inline]
    pub fn points_mut(&mut self) -> &mut [Point3] {
        &mut self.points
    }

    /// Per-point labels, if this cloud is labelled.
    #[inline]
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Appends an unlabelled point.
    ///
    /// # Panics
    ///
    /// Panics if the cloud already carries labels (labels would fall out of
    /// sync); use [`PointCloud::push_labelled`] instead.
    pub fn push(&mut self, p: Point3) {
        assert!(self.labels.is_none(), "labelled cloud requires push_labelled");
        debug_assert!(p.is_finite(), "point must be finite: {p}");
        self.points.push(p);
    }

    /// Appends a labelled point, converting an unlabelled empty cloud into a
    /// labelled one on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cloud already holds unlabelled points.
    pub fn push_labelled(&mut self, p: Point3, label: u32) {
        debug_assert!(p.is_finite(), "point must be finite: {p}");
        if self.labels.is_none() {
            assert!(self.points.is_empty(), "cannot add labels to an unlabelled cloud");
            self.labels = Some(Vec::new());
        }
        self.points.push(p);
        self.labels.as_mut().expect("labels initialized above").push(label);
    }

    /// The point at `index`.
    #[inline]
    pub fn point(&self, index: usize) -> Point3 {
        self.points[index]
    }

    /// Arithmetic mean of all points.
    ///
    /// # Panics
    ///
    /// Panics if the cloud is empty.
    pub fn centroid(&self) -> Point3 {
        assert!(!self.is_empty(), "centroid of empty cloud");
        let sum = self.points.iter().fold(Point3::ORIGIN, |acc, &p| acc + p);
        sum / self.points.len() as f32
    }

    /// Tight bounding box, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.points.iter().copied())
    }

    /// Returns a new cloud containing the points (and labels) selected by
    /// `indices`, in order. Indices may repeat — the paper's ball query pads
    /// under-full neighborhoods with repeated indices, and sampling with
    /// replacement relies on this too.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        let points: Vec<Point3> = indices.iter().map(|&i| self.points[i]).collect();
        let labels = self.labels.as_ref().map(|l| indices.iter().map(|&i| l[i]).collect());
        PointCloud { points, labels }
    }

    /// Flattens the cloud into a row-major `N×3` coordinate buffer — the
    /// `N_in × M_in` input matrix of the first module (paper §III-A).
    pub fn to_xyz_rows(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.points.len() * 3);
        for p in &self.points {
            out.extend_from_slice(&p.to_array());
        }
        out
    }

    /// Recenters the cloud on its centroid and scales it to fit in the unit
    /// sphere — the standard ModelNet-style normalization applied before
    /// training and before the workload generators.
    pub fn normalize_to_unit_sphere(&mut self) {
        if self.is_empty() {
            return;
        }
        let c = self.centroid();
        for p in &mut self.points {
            *p -= c;
        }
        let max_norm = self.points.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
        if max_norm > 0.0 {
            for p in &mut self.points {
                *p = *p / max_norm;
            }
        }
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point3> {
        self.points.iter()
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<T: IntoIterator<Item = Point3>>(iter: T) -> Self {
        PointCloud::from_points(iter.into_iter().collect())
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<T: IntoIterator<Item = Point3>>(&mut self, iter: T) {
        assert!(self.labels.is_none(), "labelled cloud requires push_labelled");
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point3;
    type IntoIter = std::slice::Iter<'a, Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(0.0, 2.0, 0.0),
            Point3::new(0.0, 0.0, 2.0),
        ])
    }

    #[test]
    fn centroid_of_tetrahedron_corners() {
        assert_eq!(sample().centroid(), Point3::new(0.5, 0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_of_empty_panics() {
        let _ = PointCloud::new().centroid();
    }

    #[test]
    fn select_with_repeats() {
        let c = sample().select(&[1, 1, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.point(0), Point3::new(2.0, 0.0, 0.0));
        assert_eq!(c.point(1), Point3::new(2.0, 0.0, 0.0));
        assert_eq!(c.point(2), Point3::new(0.0, 0.0, 2.0));
    }

    #[test]
    fn select_preserves_labels() {
        let c = PointCloud::from_labelled_points(
            vec![Point3::ORIGIN, Point3::splat(1.0)],
            vec![10, 20],
        );
        let s = c.select(&[1, 0]);
        assert_eq!(s.labels(), Some(&[20, 10][..]));
    }

    #[test]
    fn to_xyz_rows_is_row_major() {
        let rows = sample().to_xyz_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(&rows[3..6], &[2.0, 0.0, 0.0]);
    }

    #[test]
    fn normalize_to_unit_sphere_centers_and_bounds_norm() {
        let mut c = sample();
        c.normalize_to_unit_sphere();
        let centroid = c.centroid();
        assert!(centroid.norm() < 1e-6);
        let max_norm = c.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
        assert!((max_norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn labelled_push_mismatch_panics() {
        let mut c = sample();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.push_labelled(Point3::ORIGIN, 1);
        }));
        assert!(result.is_err(), "adding labels to unlabelled cloud must panic");
    }

    #[test]
    fn from_iterator_collects() {
        let c: PointCloud = (0..5).map(|i| Point3::splat(i as f32)).collect();
        assert_eq!(c.len(), 5);
    }
}
