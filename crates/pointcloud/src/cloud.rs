//! The [`PointCloud`] container.

use crate::{Aabb, Point3};

/// An unordered set of 3-D points with optional per-point integer labels
/// (used by the segmentation and detection tasks).
///
/// The paper represents a module's input as an `N_in × M_in` matrix whose
/// first module has `M_in = 3` (raw coordinates). `PointCloud` is that
/// initial representation; deeper feature matrices live in
/// `mesorasi-tensor::Matrix`.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::{PointCloud, Point3};
///
/// let mut cloud = PointCloud::new();
/// cloud.push(Point3::new(0.0, 0.0, 0.0));
/// cloud.push(Point3::new(1.0, 0.0, 0.0));
/// assert_eq!(cloud.len(), 2);
/// assert_eq!(cloud.centroid(), Point3::new(0.5, 0.0, 0.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Point3>,
    labels: Option<Vec<u32>>,
}

impl PointCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        PointCloud { points: Vec::new(), labels: None }
    }

    /// Creates an empty cloud with room for `n` points.
    pub fn with_capacity(n: usize) -> Self {
        PointCloud { points: Vec::with_capacity(n), labels: None }
    }

    /// Creates a cloud from a vector of points.
    pub fn from_points(points: Vec<Point3>) -> Self {
        PointCloud { points, labels: None }
    }

    /// Creates a labelled cloud (per-point labels, e.g. part ids).
    ///
    /// # Panics
    ///
    /// Panics if `points` and `labels` have different lengths.
    pub fn from_labelled_points(points: Vec<Point3>, labels: Vec<u32>) -> Self {
        assert_eq!(points.len(), labels.len(), "one label per point required");
        PointCloud { points, labels: Some(labels) }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the cloud holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The points as a slice.
    #[inline]
    pub fn points(&self) -> &[Point3] {
        &self.points
    }

    /// Mutable access to the points (used by augmentation).
    #[inline]
    pub fn points_mut(&mut self) -> &mut [Point3] {
        &mut self.points
    }

    /// Per-point labels, if this cloud is labelled.
    #[inline]
    pub fn labels(&self) -> Option<&[u32]> {
        self.labels.as_deref()
    }

    /// Appends an unlabelled point.
    ///
    /// # Panics
    ///
    /// Panics if the cloud already carries labels (labels would fall out of
    /// sync); use [`PointCloud::push_labelled`] instead.
    pub fn push(&mut self, p: Point3) {
        assert!(self.labels.is_none(), "labelled cloud requires push_labelled");
        debug_assert!(p.is_finite(), "point must be finite: {p}");
        self.points.push(p);
    }

    /// Appends a labelled point, converting an unlabelled empty cloud into a
    /// labelled one on first use.
    ///
    /// # Panics
    ///
    /// Panics if the cloud already holds unlabelled points.
    pub fn push_labelled(&mut self, p: Point3, label: u32) {
        debug_assert!(p.is_finite(), "point must be finite: {p}");
        if self.labels.is_none() {
            assert!(self.points.is_empty(), "cannot add labels to an unlabelled cloud");
            self.labels = Some(Vec::new());
        }
        self.points.push(p);
        self.labels.as_mut().expect("labels initialized above").push(label);
    }

    /// The point at `index`.
    #[inline]
    pub fn point(&self, index: usize) -> Point3 {
        self.points[index]
    }

    /// Arithmetic mean of all points.
    ///
    /// # Panics
    ///
    /// Panics if the cloud is empty.
    pub fn centroid(&self) -> Point3 {
        assert!(!self.is_empty(), "centroid of empty cloud");
        let sum = self.points.iter().fold(Point3::ORIGIN, |acc, &p| acc + p);
        sum / self.points.len() as f32
    }

    /// Tight bounding box, or `None` when empty.
    pub fn bounds(&self) -> Option<Aabb> {
        Aabb::from_points(self.points.iter().copied())
    }

    /// Returns a new cloud containing the points (and labels) selected by
    /// `indices`, in order. Indices may repeat — the paper's ball query pads
    /// under-full neighborhoods with repeated indices, and sampling with
    /// replacement relies on this too.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        let mut out = PointCloud::new();
        self.select_into(indices, &mut out);
        out
    }

    /// [`PointCloud::select`] writing into a caller-owned cloud, reusing its
    /// backing storage — the inference engine's streaming path derives
    /// per-frame module states through this without allocating.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_into(&self, indices: &[usize], out: &mut PointCloud) {
        out.points.clear();
        out.points.extend(indices.iter().map(|&i| self.points[i]));
        match &self.labels {
            Some(l) => {
                let dst = out.labels.get_or_insert_with(Vec::new);
                dst.clear();
                dst.extend(indices.iter().map(|&i| l[i]));
            }
            None => out.labels = None,
        }
    }

    /// Overwrites this cloud with `other`'s contents, reusing the backing
    /// storage (unlike `*self = other.clone()`, which reallocates). Streams
    /// of same-sized frames stabilize to zero allocations per copy.
    pub fn copy_from(&mut self, other: &PointCloud) {
        self.points.clear();
        self.points.extend_from_slice(&other.points);
        match &other.labels {
            Some(l) => {
                let dst = self.labels.get_or_insert_with(Vec::new);
                dst.clear();
                dst.extend_from_slice(l);
            }
            None => self.labels = None,
        }
    }

    /// FNV-1a over the points' coordinate bits and the labels — a cheap
    /// content fingerprint for index caches (always paired with
    /// [`PointCloud::content_eq`] before trusting a match).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for p in &self.points {
            mix(p.x.to_bits());
            mix(p.y.to_bits());
            mix(p.z.to_bits());
        }
        if let Some(labels) = &self.labels {
            for &l in labels {
                mix(l);
            }
        }
        h
    }

    /// Bit-exact equality of positions and labels. Unlike `PartialEq`, two
    /// clouds holding `-0.0` vs `0.0` (or different NaN payloads) compare
    /// *unequal* here — exactly the discipline content-addressed caches
    /// need, since downstream results are functions of the bits.
    pub fn content_eq(&self, other: &PointCloud) -> bool {
        self.points.len() == other.points.len()
            && self.labels() == other.labels()
            && self.points.iter().zip(&other.points).all(|(p, q)| {
                p.x.to_bits() == q.x.to_bits()
                    && p.y.to_bits() == q.y.to_bits()
                    && p.z.to_bits() == q.z.to_bits()
            })
    }

    /// Heap bytes retained by the cloud's backing storage (capacity, not
    /// length) — reported as part of the inference engine's search-arena
    /// statistics.
    pub fn storage_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Point3>()
            + self.labels.as_ref().map_or(0, |l| l.capacity() * std::mem::size_of::<u32>())
    }

    /// Flattens the cloud into a row-major `N×3` coordinate buffer — the
    /// `N_in × M_in` input matrix of the first module (paper §III-A).
    pub fn to_xyz_rows(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.points.len() * 3);
        for p in &self.points {
            out.extend_from_slice(&p.to_array());
        }
        out
    }

    /// Recenters the cloud on its centroid and scales it to fit in the unit
    /// sphere — the standard ModelNet-style normalization applied before
    /// training and before the workload generators.
    pub fn normalize_to_unit_sphere(&mut self) {
        if self.is_empty() {
            return;
        }
        let c = self.centroid();
        for p in &mut self.points {
            *p -= c;
        }
        let max_norm = self.points.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
        if max_norm > 0.0 {
            for p in &mut self.points {
                *p = *p / max_norm;
            }
        }
    }

    /// Iterates over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point3> {
        self.points.iter()
    }
}

impl FromIterator<Point3> for PointCloud {
    fn from_iter<T: IntoIterator<Item = Point3>>(iter: T) -> Self {
        PointCloud::from_points(iter.into_iter().collect())
    }
}

impl Extend<Point3> for PointCloud {
    fn extend<T: IntoIterator<Item = Point3>>(&mut self, iter: T) {
        assert!(self.labels.is_none(), "labelled cloud requires push_labelled");
        self.points.extend(iter);
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Point3;
    type IntoIter = std::slice::Iter<'a, Point3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointCloud {
        PointCloud::from_points(vec![
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(2.0, 0.0, 0.0),
            Point3::new(0.0, 2.0, 0.0),
            Point3::new(0.0, 0.0, 2.0),
        ])
    }

    #[test]
    fn centroid_of_tetrahedron_corners() {
        assert_eq!(sample().centroid(), Point3::new(0.5, 0.5, 0.5));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn centroid_of_empty_panics() {
        let _ = PointCloud::new().centroid();
    }

    #[test]
    fn select_with_repeats() {
        let c = sample().select(&[1, 1, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.point(0), Point3::new(2.0, 0.0, 0.0));
        assert_eq!(c.point(1), Point3::new(2.0, 0.0, 0.0));
        assert_eq!(c.point(2), Point3::new(0.0, 0.0, 2.0));
    }

    #[test]
    fn select_preserves_labels() {
        let c = PointCloud::from_labelled_points(
            vec![Point3::ORIGIN, Point3::splat(1.0)],
            vec![10, 20],
        );
        let s = c.select(&[1, 0]);
        assert_eq!(s.labels(), Some(&[20, 10][..]));
    }

    #[test]
    fn to_xyz_rows_is_row_major() {
        let rows = sample().to_xyz_rows();
        assert_eq!(rows.len(), 12);
        assert_eq!(&rows[3..6], &[2.0, 0.0, 0.0]);
    }

    #[test]
    fn normalize_to_unit_sphere_centers_and_bounds_norm() {
        let mut c = sample();
        c.normalize_to_unit_sphere();
        let centroid = c.centroid();
        assert!(centroid.norm() < 1e-6);
        let max_norm = c.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
        assert!((max_norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn labelled_push_mismatch_panics() {
        let mut c = sample();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.push_labelled(Point3::ORIGIN, 1);
        }));
        assert!(result.is_err(), "adding labels to unlabelled cloud must panic");
    }

    #[test]
    fn from_iterator_collects() {
        let c: PointCloud = (0..5).map(|i| Point3::splat(i as f32)).collect();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn select_into_matches_select_and_reuses_capacity() {
        let c = PointCloud::from_labelled_points(
            vec![Point3::ORIGIN, Point3::splat(1.0), Point3::splat(2.0)],
            vec![7, 8, 9],
        );
        let mut out = PointCloud::new();
        c.select_into(&[2, 0, 2], &mut out);
        assert_eq!(out, c.select(&[2, 0, 2]));
        let cap = out.points.capacity();
        c.select_into(&[1], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out.points.capacity() >= cap, "select_into must not shrink capacity");
    }

    #[test]
    fn copy_from_round_trips_and_drops_stale_labels() {
        let labelled =
            PointCloud::from_labelled_points(vec![Point3::ORIGIN, Point3::splat(1.0)], vec![1, 2]);
        let plain = sample();
        let mut buf = PointCloud::new();
        buf.copy_from(&labelled);
        assert_eq!(buf, labelled);
        buf.copy_from(&plain);
        assert_eq!(buf, plain);
        assert!(buf.labels().is_none(), "copy_from must clear labels absent in the source");
    }

    #[test]
    fn content_hash_and_eq_are_bit_exact() {
        let a = PointCloud::from_points(vec![Point3::new(0.0, 1.0, 2.0)]);
        let b = PointCloud::from_points(vec![Point3::new(-0.0, 1.0, 2.0)]);
        assert!(a.content_eq(&a.clone()));
        assert!(!a.content_eq(&b), "-0.0 and 0.0 are different bits");
        assert_ne!(a.content_hash(), b.content_hash());
        let labelled = PointCloud::from_labelled_points(vec![Point3::ORIGIN], vec![3]);
        assert!(!labelled.content_eq(&PointCloud::from_points(vec![Point3::ORIGIN])));
    }
}
