//! Synthetic LiDAR scenes — the KITTI stand-in.
//!
//! F-PointNet is evaluated on KITTI \[24\]: LiDAR sweeps of street scenes
//! (~130 K points per frame, Fig. 7) with labelled objects. This module
//! ray-casts a simulated spinning LiDAR (configurable beam count / azimuth
//! resolution, like a Velodyne HDL-64E) against a scene of ground plane +
//! boxes (cars, pedestrians, cyclists) + walls. The result reproduces the
//! properties the paper's experiments depend on: realistic point counts,
//! strongly non-uniform density (quadratic falloff with range), and frustum
//! subsets around objects for the F-PointNet pipeline.

use crate::{Point3, PointCloud};
use rand::Rng;
use std::f32::consts::PI;

/// Object categories that can appear in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectClass {
    /// Car-sized box (~4.0 × 1.8 × 1.5 m).
    Car,
    /// Pedestrian-sized box (~0.6 × 0.6 × 1.7 m).
    Pedestrian,
    /// Cyclist-sized box (~1.8 × 0.6 × 1.7 m).
    Cyclist,
}

impl ObjectClass {
    /// Class label (matches the KITTI convention used in the detection
    /// experiments: 0 = car, 1 = pedestrian, 2 = cyclist).
    pub fn label(self) -> u32 {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Pedestrian => 1,
            ObjectClass::Cyclist => 2,
        }
    }

    /// Canonical box half-extents `(hx, hy, hz)` in meters.
    pub fn half_extents(self) -> (f32, f32, f32) {
        match self {
            ObjectClass::Car => (2.0, 0.9, 0.75),
            ObjectClass::Pedestrian => (0.3, 0.3, 0.85),
            ObjectClass::Cyclist => (0.9, 0.3, 0.85),
        }
    }
}

/// An axis-aligned object box placed in the scene (yaw is applied to the
/// box's local frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneObject {
    /// Category of the object.
    pub class: ObjectClass,
    /// Center of the box (z is height above ground).
    pub center: Point3,
    /// Rotation about the vertical axis, radians.
    pub yaw: f32,
}

/// Configuration of the simulated spinning LiDAR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LidarConfig {
    /// Number of vertical beams (64 for an HDL-64E-class unit).
    pub beams: usize,
    /// Azimuth steps per revolution.
    pub azimuth_steps: usize,
    /// Lowest beam elevation angle, radians (negative = pointing down).
    pub min_elevation: f32,
    /// Highest beam elevation angle, radians.
    pub max_elevation: f32,
    /// Maximum range in meters; misses beyond this return no point.
    pub max_range: f32,
    /// Sensor height above ground, meters.
    pub sensor_height: f32,
    /// Per-return Gaussian range noise (standard deviation, meters).
    pub range_noise: f32,
}

impl Default for LidarConfig {
    fn default() -> Self {
        LidarConfig {
            beams: 64,
            azimuth_steps: 2048,
            min_elevation: -24.8f32.to_radians(),
            max_elevation: 2.0f32.to_radians(),
            max_range: 80.0,
            sensor_height: 1.73,
            range_noise: 0.01,
        }
    }
}

impl LidarConfig {
    /// A reduced configuration for tests and examples (~8 K rays).
    pub fn small() -> Self {
        LidarConfig { beams: 16, azimuth_steps: 512, ..LidarConfig::default() }
    }

    /// Total rays cast per frame.
    pub fn rays_per_frame(&self) -> usize {
        self.beams * self.azimuth_steps
    }
}

/// A generated scene: the full sweep cloud (labelled per point with
/// `u32::MAX→background` replaced by object index + 1; 0 = background) plus
/// the object list.
#[derive(Debug, Clone)]
pub struct Scene {
    /// The LiDAR sweep. Labels: `0` = background, `i + 1` = `objects[i]`.
    pub cloud: PointCloud,
    /// Objects placed in the scene.
    pub objects: Vec<SceneObject>,
}

impl Scene {
    /// Extracts the frustum subset of points whose azimuth falls within
    /// `half_angle` of the direction toward `objects[object_index]` — the
    /// stand-in for F-PointNet's 2-D-detection-driven frustum extraction.
    ///
    /// # Panics
    ///
    /// Panics if `object_index` is out of range.
    pub fn frustum(&self, object_index: usize, half_angle: f32) -> PointCloud {
        let obj = self.objects[object_index];
        let center_az = obj.center.y.atan2(obj.center.x);
        let mut out = PointCloud::new();
        let labels = self.cloud.labels().expect("scene clouds are labelled");
        for (i, &p) in self.cloud.points().iter().enumerate() {
            let az = p.y.atan2(p.x);
            let mut diff = az - center_az;
            while diff > PI {
                diff -= 2.0 * PI;
            }
            while diff < -PI {
                diff += 2.0 * PI;
            }
            if diff.abs() <= half_angle {
                out.push_labelled(p, labels[i]);
            }
        }
        out
    }
}

/// Generates a street scene with `n_objects` objects and ray-casts one LiDAR
/// sweep through it.
pub fn generate_scene(config: &LidarConfig, n_objects: usize, seed: u64) -> Scene {
    let mut rng = crate::seeded_rng(seed ^ 0x11da2);
    let mut objects = Vec::with_capacity(n_objects);
    for _ in 0..n_objects {
        let class = match rng.gen_range(0..6) {
            0..=2 => ObjectClass::Car,
            3 | 4 => ObjectClass::Pedestrian,
            _ => ObjectClass::Cyclist,
        };
        let (.., hz) = class.half_extents();
        let range = rng.gen_range(5.0..45.0f32);
        let azimuth = rng.gen_range(-PI..PI);
        objects.push(SceneObject {
            class,
            center: Point3::new(range * azimuth.cos(), range * azimuth.sin(), hz),
            yaw: rng.gen_range(-PI..PI),
        });
    }

    let mut cloud = PointCloud::new();
    let sensor = Point3::new(0.0, 0.0, config.sensor_height);
    for b in 0..config.beams {
        let t = if config.beams > 1 { b as f32 / (config.beams - 1) as f32 } else { 0.5 };
        let elevation = config.min_elevation + t * (config.max_elevation - config.min_elevation);
        for a in 0..config.azimuth_steps {
            let azimuth = 2.0 * PI * a as f32 / config.azimuth_steps as f32;
            let dir = Point3::new(
                elevation.cos() * azimuth.cos(),
                elevation.cos() * azimuth.sin(),
                elevation.sin(),
            );
            if let Some((range, label)) = cast_ray(sensor, dir, config, &objects) {
                let noisy = range + config.range_noise * gaussian(&mut rng);
                let hit = sensor + dir * noisy;
                cloud.push_labelled(hit, label);
            }
        }
    }
    Scene { cloud, objects }
}

/// Casts one ray; returns `(range, label)` of the nearest hit, if any.
fn cast_ray(
    origin: Point3,
    dir: Point3,
    config: &LidarConfig,
    objects: &[SceneObject],
) -> Option<(f32, u32)> {
    let mut best: Option<(f32, u32)> = None;
    // Ground plane z = 0.
    if dir.z < -1e-6 {
        let t = -origin.z / dir.z;
        if t > 0.1 && t <= config.max_range {
            best = Some((t, 0));
        }
    }
    // Object boxes (yaw-rotated AABB slab test in the box frame).
    for (i, obj) in objects.iter().enumerate() {
        let (hx, hy, hz) = obj.class.half_extents();
        let (s, c) = obj.yaw.sin_cos();
        let rel = origin - obj.center;
        let o = Point3::new(c * rel.x + s * rel.y, -s * rel.x + c * rel.y, rel.z);
        let d = Point3::new(c * dir.x + s * dir.y, -s * dir.x + c * dir.y, dir.z);
        if let Some(t) = slab_intersect(o, d, hx, hy, hz) {
            if t > 0.1 && t <= config.max_range && best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i as u32 + 1));
            }
        }
    }
    best
}

/// Ray/AABB slab intersection in the box's local frame; returns entry t.
fn slab_intersect(o: Point3, d: Point3, hx: f32, hy: f32, hz: f32) -> Option<f32> {
    let mut tmin = f32::NEG_INFINITY;
    let mut tmax = f32::INFINITY;
    for (oc, dc, h) in [(o.x, d.x, hx), (o.y, d.y, hy), (o.z, d.z, hz)] {
        if dc.abs() < 1e-9 {
            if oc.abs() > h {
                return None;
            }
        } else {
            let t1 = (-h - oc) / dc;
            let t2 = (h - oc) / dc;
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            tmin = tmin.max(lo);
            tmax = tmax.min(hi);
            if tmin > tmax {
                return None;
            }
        }
    }
    if tmax < 0.0 {
        None
    } else {
        Some(tmin.max(0.0))
    }
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_produces_kitti_scale_clouds() {
        let config = LidarConfig::default();
        assert_eq!(config.rays_per_frame(), 64 * 2048); // 131 072 ≈ 130 K (Fig. 7)
    }

    #[test]
    fn small_scene_has_ground_and_object_points() {
        let scene = generate_scene(&LidarConfig::small(), 5, 3);
        assert!(!scene.cloud.is_empty());
        let labels = scene.cloud.labels().unwrap();
        let ground = labels.iter().filter(|&&l| l == 0).count();
        let object = labels.iter().filter(|&&l| l > 0).count();
        assert!(ground > 0, "expected ground returns");
        assert!(object > 0, "expected object returns");
        assert!(ground > object, "ground should dominate a street scene");
    }

    #[test]
    fn points_are_within_max_range() {
        let config = LidarConfig::small();
        let scene = generate_scene(&config, 3, 1);
        let sensor = Point3::new(0.0, 0.0, config.sensor_height);
        for &p in scene.cloud.points() {
            assert!(p.distance(sensor) <= config.max_range + 1.0);
        }
    }

    #[test]
    fn density_falls_off_with_range() {
        // LiDAR clouds are denser near the sensor — count returns within
        // 10 m vs 20-30 m ring; near ring should have more points per area.
        let scene = generate_scene(&LidarConfig::small(), 0, 7);
        let mut near = 0usize;
        let mut far = 0usize;
        for &p in scene.cloud.points() {
            let r = (p.x * p.x + p.y * p.y).sqrt();
            if r < 10.0 {
                near += 1;
            } else if r < 30.0 {
                far += 1;
            }
        }
        // near ring area is ~1/8 of the far ring; equal density would give
        // near ≈ far/8. LiDAR should give much more.
        assert!(near as f32 > far as f32 / 4.0, "near {near}, far {far}");
    }

    #[test]
    fn frustum_contains_the_target_object() {
        let scene = generate_scene(&LidarConfig::small(), 4, 11);
        // pick an object that actually received returns
        let labels = scene.cloud.labels().unwrap();
        let Some(target) =
            (0..scene.objects.len()).find(|&i| labels.iter().any(|&l| l == i as u32 + 1))
        else {
            panic!("no object received returns");
        };
        let frustum = scene.frustum(target, 0.2);
        assert!(!frustum.is_empty());
        let f_labels = frustum.labels().unwrap();
        assert!(
            f_labels.iter().any(|&l| l == target as u32 + 1),
            "frustum must contain points of its target object"
        );
        assert!(frustum.len() < scene.cloud.len());
    }

    #[test]
    fn slab_intersection_hits_and_misses() {
        // Ray along +x toward a unit box at origin.
        let t =
            slab_intersect(Point3::new(-5.0, 0.0, 0.0), Point3::new(1.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        assert!((t.unwrap() - 4.0).abs() < 1e-5);
        // Ray that misses.
        let miss =
            slab_intersect(Point3::new(-5.0, 3.0, 0.0), Point3::new(1.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        assert!(miss.is_none());
        // Ray starting inside.
        let inside = slab_intersect(Point3::ORIGIN, Point3::new(1.0, 0.0, 0.0), 1.0, 1.0, 1.0);
        assert_eq!(inside, Some(0.0));
    }

    #[test]
    fn deterministic_scenes() {
        let a = generate_scene(&LidarConfig::small(), 3, 5);
        let b = generate_scene(&LidarConfig::small(), 3, 5);
        assert_eq!(a.cloud, b.cloud);
    }
}
