//! A point in 3-D Cartesian space.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

/// A point (or vector) in 3-D Cartesian space, the fundamental unit of a
/// point cloud (paper §II: "each point is uniquely identified by its
/// `<x, y, z>` coordinates").
///
/// `Point3` is used both as a position and as a displacement; the paper's
/// aggregation step computes displacements `p_k - p_i`, so the arithmetic
/// operators below are part of the algorithm, not mere convenience.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::Point3;
///
/// let centroid = Point3::new(1.0, 0.0, 0.0);
/// let neighbor = Point3::new(1.0, 2.0, 0.0);
/// let offset = neighbor - centroid;
/// assert_eq!(offset, Point3::new(0.0, 2.0, 0.0));
/// assert_eq!(offset.norm(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
    /// Z coordinate.
    pub z: f32,
}

impl Point3 {
    /// The origin, `(0, 0, 0)`.
    pub const ORIGIN: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its three coordinates.
    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Point3 { x, y, z }
    }

    /// Creates a point with all coordinates equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Point3 { x: v, y: v, z: v }
    }

    /// Returns the coordinates as a `[x, y, z]` array, the layout used when
    /// a cloud is flattened into an `N×3` feature matrix.
    #[inline]
    pub const fn to_array(self) -> [f32; 3] {
        [self.x, self.y, self.z]
    }

    /// Creates a point from a `[x, y, z]` array.
    #[inline]
    pub const fn from_array(a: [f32; 3]) -> Self {
        Point3 { x: a[0], y: a[1], z: a[2] }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Point3) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Point3) -> Point3 {
        Point3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm. Neighbor search compares squared distances to
    /// avoid the square root on the hot path.
    #[inline]
    pub fn norm_squared(self) -> f32 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f32 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Point3) -> f32 {
        (self - other).norm_squared()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point3) -> f32 {
        self.distance_squared(other).sqrt()
    }

    /// Returns the unit vector pointing in this direction, or the origin if
    /// the norm is zero (so normalizing a degenerate offset is safe).
    #[inline]
    pub fn normalized(self) -> Point3 {
        let n = self.norm();
        if n == 0.0 {
            Point3::ORIGIN
        } else {
            self / n
        }
    }

    /// Component-wise minimum, used to grow bounding boxes.
    #[inline]
    pub fn min(self, other: Point3) -> Point3 {
        Point3 { x: self.x.min(other.x), y: self.y.min(other.y), z: self.z.min(other.z) }
    }

    /// Component-wise maximum, used to grow bounding boxes.
    #[inline]
    pub fn max(self, other: Point3) -> Point3 {
        Point3 { x: self.x.max(other.x), y: self.y.max(other.y), z: self.z.max(other.z) }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Point3, t: f32) -> Point3 {
        self + (other - self) * t
    }

    /// True if all coordinates are finite. Generators debug-assert this so a
    /// NaN never reaches neighbor search (where it would poison ordering).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    #[inline]
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, rhs: f32) -> Point3 {
        Point3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f32> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, rhs: f32) -> Point3 {
        Point3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Point3 {
    type Output = f32;

    /// Indexes the coordinates as `0 → x`, `1 → y`, `2 → z`; the kd-tree
    /// cycles split axes this way.
    ///
    /// # Panics
    ///
    /// Panics if `axis > 2`.
    #[inline]
    fn index(&self, axis: usize) -> &f32 {
        match axis {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Point3 axis out of range: {axis}"),
        }
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<[f32; 3]> for Point3 {
    fn from(a: [f32; 3]) -> Self {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f32; 3] {
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_matches_componentwise_definition() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Point3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Point3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Point3::new(2.0, -2.5, 3.0));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn dot_and_cross_products() {
        let x = Point3::new(1.0, 0.0, 0.0);
        let y = Point3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        assert_eq!(x.cross(y), Point3::new(0.0, 0.0, 1.0));
        assert_eq!(y.cross(x), Point3::new(0.0, 0.0, -1.0));
    }

    #[test]
    fn distances() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
    }

    #[test]
    fn normalized_handles_zero_vector() {
        assert_eq!(Point3::ORIGIN.normalized(), Point3::ORIGIN);
        let n = Point3::new(0.0, 0.0, 2.0).normalized();
        assert!((n.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point3::new(1.0, 5.0, -2.0);
        let b = Point3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Point3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Point3::new(2.0, 5.0, -1.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn index_by_axis() {
        let p = Point3::new(7.0, 8.0, 9.0);
        assert_eq!(p[0], 7.0);
        assert_eq!(p[1], 8.0);
        assert_eq!(p[2], 9.0);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn index_out_of_range_panics() {
        let _ = Point3::ORIGIN[3];
    }

    #[test]
    fn array_round_trip() {
        let p = Point3::new(1.5, 2.5, 3.5);
        assert_eq!(Point3::from_array(p.to_array()), p);
        let arr: [f32; 3] = p.into();
        assert_eq!(Point3::from(arr), p);
    }
}
