//! Centroid sampling: random and farthest-point.
//!
//! A module's neighbor search may run on only a subset of input points ("the
//! notion of a stride", paper §III-A), producing `N_out < N_in`. PointNet++
//! originally selects those centroids with Farthest Point Sampling; the
//! paper's optimized baseline replaces FPS with random sampling "with little
//! accuracy loss" (§VI). Both are provided here; the executors default to
//! random sampling to match the paper's baseline.

use crate::{Point3, PointCloud};
use rand::seq::SliceRandom;
use rand::Rng;

/// Selects `count` distinct point indices uniformly at random.
///
/// Matches the paper's optimized baseline (§VI, optimization 3). The result
/// is sorted ascending so downstream gather patterns stay index-coherent,
/// which the Aggregation Unit's LSB bank interleaving benefits from.
///
/// # Panics
///
/// Panics if `count > cloud.len()`.
pub fn random_indices(cloud: &PointCloud, count: usize, seed: u64) -> Vec<usize> {
    let mut out = Vec::new();
    random_indices_into(cloud.len(), count, seed, &mut Vec::new(), &mut out);
    out
}

/// [`random_indices`] writing into caller-owned buffers: `scratch` holds the
/// full index permutation, `out` receives the sorted picks. Both reuse their
/// capacity, so the inference engine's streaming path re-derives centroid
/// selections without allocating. Bit-identical to [`random_indices`].
///
/// # Panics
///
/// Panics if `count > n`.
pub fn random_indices_into(
    n: usize,
    count: usize,
    seed: u64,
    scratch: &mut Vec<usize>,
    out: &mut Vec<usize>,
) {
    assert!(count <= n, "cannot sample {count} centroids from {n} points");
    let mut rng = crate::seeded_rng(seed);
    scratch.clear();
    scratch.extend(0..n);
    scratch.shuffle(&mut rng);
    out.clear();
    out.extend_from_slice(&scratch[..count]);
    out.sort_unstable();
}

/// Farthest Point Sampling: iteratively picks the point farthest from the
/// already-picked set. O(count × n) time, the standard implementation.
///
/// # Panics
///
/// Panics if `count > cloud.len()` or the cloud is empty while `count > 0`.
pub fn farthest_point_indices(cloud: &PointCloud, count: usize, seed: u64) -> Vec<usize> {
    assert!(count <= cloud.len(), "cannot sample {count} centroids from {} points", cloud.len());
    if count == 0 {
        return Vec::new();
    }
    let pts = cloud.points();
    let mut rng = crate::seeded_rng(seed);
    let first = rng.gen_range(0..pts.len());

    let mut picked = Vec::with_capacity(count);
    picked.push(first);
    // dist[i] = squared distance from point i to the nearest picked point.
    let mut dist: Vec<f32> = pts.iter().map(|&p| p.distance_squared(pts[first])).collect();
    while picked.len() < count {
        let (next, _) =
            dist.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("non-empty cloud");
        picked.push(next);
        let np = pts[next];
        for (d, &p) in dist.iter_mut().zip(pts) {
            let nd = p.distance_squared(np);
            if nd < *d {
                *d = nd;
            }
        }
    }
    picked
}

/// Downsamples (or upsamples with replacement) a cloud to exactly `count`
/// points — used to fix the input size of every network (e.g. 1024 points
/// for classification, 2048 for segmentation).
pub fn resample(cloud: &PointCloud, count: usize, seed: u64) -> PointCloud {
    let n = cloud.len();
    assert!(n > 0, "cannot resample an empty cloud");
    if count <= n {
        cloud.select(&random_indices(cloud, count, seed))
    } else {
        let mut rng = crate::seeded_rng(seed);
        let mut idx: Vec<usize> = (0..n).collect();
        idx.extend((n..count).map(|_| rng.gen_range(0..n)));
        cloud.select(&idx)
    }
}

/// Statistics about how well a sampling spreads over the cloud: the minimum
/// pairwise distance among sampled points (larger = better coverage).
pub fn min_pairwise_distance(cloud: &PointCloud, indices: &[usize]) -> f32 {
    let mut best = f32::INFINITY;
    for (a, &i) in indices.iter().enumerate() {
        for &j in &indices[a + 1..] {
            let d = cloud.point(i).distance(cloud.point(j));
            if d < best {
                best = d;
            }
        }
    }
    best
}

/// Mean of the sampled points, handy for quick sanity checks in tests.
pub fn sampled_centroid(cloud: &PointCloud, indices: &[usize]) -> Point3 {
    assert!(!indices.is_empty());
    let sum = indices.iter().fold(Point3::ORIGIN, |acc, &i| acc + cloud.point(i));
    sum / indices.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{sample_shape, ShapeClass};

    #[test]
    fn random_indices_are_distinct_and_in_range() {
        let cloud = sample_shape(ShapeClass::Sphere, 256, 11);
        let idx = random_indices(&cloud, 64, 5);
        assert_eq!(idx.len(), 64);
        let mut sorted = idx.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "indices must be distinct");
        assert!(idx.iter().all(|&i| i < 256));
    }

    #[test]
    fn random_indices_deterministic_per_seed() {
        let cloud = sample_shape(ShapeClass::Sphere, 128, 11);
        assert_eq!(random_indices(&cloud, 32, 7), random_indices(&cloud, 32, 7));
        assert_ne!(random_indices(&cloud, 32, 7), random_indices(&cloud, 32, 8));
    }

    #[test]
    fn random_indices_into_matches_allocating_variant() {
        let cloud = sample_shape(ShapeClass::Torus, 200, 3);
        let (mut scratch, mut out) = (Vec::new(), Vec::new());
        for seed in [0u64, 7, 41] {
            random_indices_into(cloud.len(), 48, seed, &mut scratch, &mut out);
            assert_eq!(out, random_indices(&cloud, 48, seed), "seed {seed}");
        }
    }

    #[test]
    fn fps_spreads_better_than_random() {
        let cloud = sample_shape(ShapeClass::Sphere, 512, 3);
        let fps = farthest_point_indices(&cloud, 32, 1);
        let rnd = random_indices(&cloud, 32, 1);
        let d_fps = min_pairwise_distance(&cloud, &fps);
        let d_rnd = min_pairwise_distance(&cloud, &rnd);
        assert!(d_fps > d_rnd, "FPS min pairwise distance {d_fps} should beat random {d_rnd}");
    }

    #[test]
    fn fps_returns_distinct_indices() {
        let cloud = sample_shape(ShapeClass::Cube, 200, 4);
        let idx = farthest_point_indices(&cloud, 50, 9);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn fps_count_zero_is_empty() {
        let cloud = sample_shape(ShapeClass::Cube, 16, 4);
        assert!(farthest_point_indices(&cloud, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let cloud = sample_shape(ShapeClass::Cube, 16, 4);
        let _ = random_indices(&cloud, 17, 0);
    }

    #[test]
    fn resample_up_and_down() {
        let cloud = sample_shape(ShapeClass::Cone, 100, 2);
        assert_eq!(resample(&cloud, 40, 0).len(), 40);
        assert_eq!(resample(&cloud, 250, 0).len(), 250);
    }
}
