//! Voxelization — the alternative representation the paper positions
//! delayed-aggregation against (§II: voxel grids "suffer from low accuracy
//! and/or consume excessively high memory"; §VIII discusses PVCNN's hybrid).
//!
//! Provided so downstream users can quantify that trade-off themselves:
//! [`VoxelGrid::build`] bins a cloud, exposes occupancy/centroid queries,
//! memory accounting (the §II "excessively high memory" claim is checkable
//! with [`VoxelGrid::dense_bytes`]), and voxel-grid downsampling — the
//! standard preprocessing alternative to point sampling.

use crate::{Aabb, Point3, PointCloud};
use std::collections::HashMap;

/// A sparse voxel grid over a cloud.
#[derive(Debug, Clone)]
pub struct VoxelGrid {
    bounds: Aabb,
    resolution: usize,
    /// Occupied cells: linear index → point indices.
    cells: HashMap<u64, Vec<usize>>,
}

impl VoxelGrid {
    /// Bins `cloud` into a `resolution³` grid over its bounding box.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0` or the cloud is empty.
    pub fn build(cloud: &PointCloud, resolution: usize) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        let bounds = cloud.bounds().expect("cannot voxelize an empty cloud");
        let mut cells: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &p) in cloud.points().iter().enumerate() {
            let key = Self::key_for(&bounds, resolution, p);
            cells.entry(key).or_default().push(i);
        }
        VoxelGrid { bounds, resolution, cells }
    }

    fn key_for(bounds: &Aabb, resolution: usize, p: Point3) -> u64 {
        let n = bounds.normalize(p);
        let r = resolution as f32;
        let q = |v: f32| -> u64 { ((v * r) as usize).min(resolution - 1) as u64 };
        (q(n.x) * resolution as u64 + q(n.y)) * resolution as u64 + q(n.z)
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Number of occupied voxels.
    pub fn occupied(&self) -> usize {
        self.cells.len()
    }

    /// Occupancy fraction: occupied voxels over total cells.
    pub fn occupancy(&self) -> f64 {
        self.occupied() as f64 / (self.resolution as f64).powi(3)
    }

    /// Bytes a dense occupancy tensor of this grid would take at
    /// `bytes_per_cell` (1 for a binary grid, 4 for a float feature) — the
    /// §II memory cost of the voxel representation.
    pub fn dense_bytes(&self, bytes_per_cell: usize) -> u64 {
        (self.resolution as u64).pow(3) * bytes_per_cell as u64
    }

    /// The point indices in the voxel containing `p`, if occupied.
    pub fn points_in_voxel_of(&self, p: Point3) -> Option<&[usize]> {
        let key = Self::key_for(&self.bounds, self.resolution, p);
        self.cells.get(&key).map(Vec::as_slice)
    }

    /// Voxel-grid downsampling: one point per occupied voxel (the centroid
    /// of its members) — the classic preprocessing reduction.
    pub fn downsample(&self, cloud: &PointCloud) -> PointCloud {
        // Deterministic order: sort by cell key.
        let mut keys: Vec<&u64> = self.cells.keys().collect();
        keys.sort_unstable();
        let mut out = PointCloud::with_capacity(self.cells.len());
        for key in keys {
            let members = &self.cells[key];
            let sum = members.iter().fold(Point3::ORIGIN, |acc, &i| acc + cloud.point(i));
            out.push(sum / members.len() as f32);
        }
        out
    }
}

/// Compares the memory footprint of the raw point representation against a
/// dense voxel grid at `resolution` — the quantified form of the paper's
/// §II argument for operating on raw points.
pub fn representation_bytes(cloud: &PointCloud, resolution: usize) -> (u64, u64) {
    let raw = (cloud.len() * 3 * 4) as u64;
    let grid = VoxelGrid::build(cloud, resolution);
    (raw, grid.dense_bytes(4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{sample_shape, ShapeClass};

    #[test]
    fn every_point_lands_in_exactly_one_voxel() {
        let cloud = sample_shape(ShapeClass::Chair, 256, 1);
        let grid = VoxelGrid::build(&cloud, 8);
        let total: usize = grid.cells.values().map(Vec::len).sum();
        assert_eq!(total, 256);
        for &p in cloud.points() {
            assert!(grid.points_in_voxel_of(p).is_some());
        }
    }

    #[test]
    fn surface_clouds_are_sparse_in_voxel_space() {
        // A 2-D surface in a 3-D grid occupies O(r²) of r³ cells.
        let cloud = sample_shape(ShapeClass::Sphere, 2048, 2);
        let grid = VoxelGrid::build(&cloud, 32);
        assert!(grid.occupancy() < 0.2, "occupancy {}", grid.occupancy());
    }

    #[test]
    fn dense_voxels_cost_more_memory_than_points_at_high_resolution() {
        // The §II claim: dense grids at useful resolutions dwarf raw points.
        let cloud = sample_shape(ShapeClass::Car, 1024, 3);
        let (raw, dense) = representation_bytes(&cloud, 64);
        assert!(dense > 50 * raw, "dense {dense} vs raw {raw}");
    }

    #[test]
    fn downsample_returns_one_point_per_occupied_voxel() {
        let cloud = sample_shape(ShapeClass::Vase, 512, 4);
        let grid = VoxelGrid::build(&cloud, 6);
        let down = grid.downsample(&cloud);
        assert_eq!(down.len(), grid.occupied());
        assert!(down.len() < cloud.len());
        // Every centroid lies within the original bounds.
        let bounds = cloud.bounds().unwrap();
        for &p in down.points() {
            assert!(bounds.contains(p));
        }
    }

    #[test]
    fn resolution_one_collapses_to_single_cell() {
        let cloud = sample_shape(ShapeClass::Cube, 64, 5);
        let grid = VoxelGrid::build(&cloud, 1);
        assert_eq!(grid.occupied(), 1);
        assert_eq!(grid.downsample(&cloud).len(), 1);
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn zero_resolution_panics() {
        let cloud = sample_shape(ShapeClass::Cube, 8, 5);
        let _ = VoxelGrid::build(&cloud, 0);
    }
}
