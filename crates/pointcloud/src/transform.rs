//! Data augmentation used when training the networks for Fig. 16.
//!
//! These match the standard PointNet++-style augmentations: random rotation
//! about the up axis, per-point Gaussian jitter, anisotropic scaling, and
//! random point dropout.

use crate::{Point3, PointCloud};
use rand::Rng;
use std::f32::consts::PI;

/// Rotates every point about the z (up) axis by `angle` radians.
pub fn rotate_z(cloud: &mut PointCloud, angle: f32) {
    let (s, c) = angle.sin_cos();
    for p in cloud.points_mut() {
        *p = Point3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z);
    }
}

/// Applies a uniformly random z rotation.
pub fn random_rotate_z(cloud: &mut PointCloud, seed: u64) {
    let mut rng = crate::seeded_rng(seed);
    rotate_z(cloud, rng.gen_range(0.0..(2.0 * PI)));
}

/// Adds clipped Gaussian jitter to every point, the PointNet++ recipe
/// (`sigma = 0.01`, `clip = 0.05` for unit-sphere clouds).
pub fn jitter(cloud: &mut PointCloud, sigma: f32, clip: f32, seed: u64) {
    assert!(sigma >= 0.0 && clip >= 0.0);
    let mut rng = crate::seeded_rng(seed);
    let mut noise = || (sigma * gaussian(&mut rng)).clamp(-clip, clip);
    for p in cloud.points_mut() {
        *p += Point3::new(noise(), noise(), noise());
    }
}

/// Scales the cloud anisotropically by factors drawn from `[lo, hi]`.
pub fn random_scale(cloud: &mut PointCloud, lo: f32, hi: f32, seed: u64) {
    assert!(0.0 < lo && lo <= hi);
    let mut rng = crate::seeded_rng(seed);
    let sx = rng.gen_range(lo..=hi);
    let sy = rng.gen_range(lo..=hi);
    let sz = rng.gen_range(lo..=hi);
    for p in cloud.points_mut() {
        *p = Point3::new(p.x * sx, p.y * sy, p.z * sz);
    }
}

/// Randomly replaces a `ratio` fraction of points with the first point
/// (PointNet++'s "random input dropout": keeps the tensor shape fixed while
/// destroying information).
pub fn random_dropout(cloud: &mut PointCloud, ratio: f32, seed: u64) {
    assert!((0.0..=1.0).contains(&ratio));
    if cloud.is_empty() {
        return;
    }
    let mut rng = crate::seeded_rng(seed);
    let first = cloud.point(0);
    for p in cloud.points_mut() {
        if rng.gen::<f32>() < ratio {
            *p = first;
        }
    }
}

/// One standard normal sample via Box–Muller.
fn gaussian<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Applies the full training augmentation pipeline with one seed.
pub fn augment_for_training(cloud: &mut PointCloud, seed: u64) {
    random_rotate_z(cloud, seed.wrapping_mul(3));
    random_scale(cloud, 0.8, 1.25, seed.wrapping_mul(5));
    jitter(cloud, 0.01, 0.05, seed.wrapping_mul(7));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{sample_shape, ShapeClass};

    #[test]
    fn rotate_z_preserves_norms_and_height() {
        let mut cloud = sample_shape(ShapeClass::Chair, 128, 0);
        let before: Vec<(f32, f32)> = cloud.iter().map(|p| (p.norm(), p.z)).collect();
        rotate_z(&mut cloud, 1.2345);
        for (p, (norm, z)) in cloud.iter().zip(&before) {
            assert!((p.norm() - norm).abs() < 1e-5);
            assert!((p.z - z).abs() < 1e-6);
        }
    }

    #[test]
    fn rotate_z_full_circle_is_identity() {
        let mut cloud = sample_shape(ShapeClass::Cube, 64, 0);
        let original = cloud.clone();
        rotate_z(&mut cloud, 2.0 * PI);
        for (a, b) in cloud.iter().zip(original.iter()) {
            assert!(a.distance(*b) < 1e-5);
        }
    }

    #[test]
    fn jitter_is_bounded_by_clip() {
        let mut cloud = sample_shape(ShapeClass::Sphere, 256, 0);
        let original = cloud.clone();
        jitter(&mut cloud, 0.5, 0.05, 9);
        for (a, b) in cloud.iter().zip(original.iter()) {
            let d = *a - *b;
            assert!(
                d.x.abs() <= 0.05 + 1e-6 && d.y.abs() <= 0.05 + 1e-6 && d.z.abs() <= 0.05 + 1e-6
            );
        }
    }

    #[test]
    fn jitter_zero_sigma_is_identity() {
        let mut cloud = sample_shape(ShapeClass::Sphere, 64, 0);
        let original = cloud.clone();
        jitter(&mut cloud, 0.0, 0.05, 9);
        assert_eq!(cloud, original);
    }

    #[test]
    fn random_scale_stays_in_bounds() {
        let mut cloud = PointCloud::from_points(vec![Point3::splat(1.0)]);
        random_scale(&mut cloud, 0.5, 2.0, 4);
        let p = cloud.point(0);
        for v in [p.x, p.y, p.z] {
            assert!((0.5..=2.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn dropout_ratio_one_collapses_to_first_point() {
        let mut cloud = sample_shape(ShapeClass::Cone, 32, 0);
        let first = cloud.point(0);
        random_dropout(&mut cloud, 1.0, 2);
        assert!(cloud.iter().all(|&p| p == first));
    }

    #[test]
    fn dropout_ratio_zero_is_identity() {
        let mut cloud = sample_shape(ShapeClass::Cone, 32, 0);
        let original = cloud.clone();
        random_dropout(&mut cloud, 0.0, 2);
        assert_eq!(cloud, original);
    }

    #[test]
    fn augmentation_is_deterministic_per_seed() {
        let mut a = sample_shape(ShapeClass::Lamp, 64, 1);
        let mut b = sample_shape(ShapeClass::Lamp, 64, 1);
        augment_for_training(&mut a, 77);
        augment_for_training(&mut b, 77);
        assert_eq!(a, b);
    }
}
