//! Axis-aligned bounding boxes.

use crate::Point3;

/// An axis-aligned bounding box, used to normalize clouds into the unit cube
/// (required by [`crate::morton`]) and to prune kd-tree searches.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::{Aabb, Point3};
///
/// let b = Aabb::from_points([Point3::new(0.0, 0.0, 0.0), Point3::new(2.0, 4.0, 6.0)])
///     .expect("non-empty");
/// assert_eq!(b.center(), Point3::new(1.0, 2.0, 3.0));
/// assert_eq!(b.extent(), Point3::new(2.0, 4.0, 6.0));
/// assert!(b.contains(Point3::new(1.0, 1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    min: Point3,
    max: Point3,
}

impl Aabb {
    /// Creates a box from its two extreme corners.
    ///
    /// # Panics
    ///
    /// Panics if any component of `min` exceeds the matching component of
    /// `max`.
    pub fn new(min: Point3, max: Point3) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min {min} must not exceed max {max}"
        );
        Aabb { min, max }
    }

    /// The tightest box containing all `points`, or `None` when the iterator
    /// is empty.
    pub fn from_points<I>(points: I) -> Option<Self>
    where
        I: IntoIterator<Item = Point3>,
    {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut min = first;
        let mut max = first;
        for p in it {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Aabb { min, max })
    }

    /// Minimum corner.
    #[inline]
    pub fn min(&self) -> Point3 {
        self.min
    }

    /// Maximum corner.
    #[inline]
    pub fn max(&self) -> Point3 {
        self.max
    }

    /// Center of the box.
    #[inline]
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Side lengths of the box.
    #[inline]
    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Length of the longest side. Zero for a degenerate (single-point) box.
    #[inline]
    pub fn longest_side(&self) -> f32 {
        let e = self.extent();
        e.x.max(e.y).max(e.z)
    }

    /// True if `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn expand(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Squared distance from `p` to the box (zero when inside). The kd-tree
    /// uses this bound to prune subtrees during KNN search.
    #[inline]
    pub fn distance_squared_to(&self, p: Point3) -> f32 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        let dz = (self.min.z - p.z).max(0.0).max(p.z - self.max.z);
        dx * dx + dy * dy + dz * dz
    }

    /// Maps `p` into `[0, 1]^3` relative to this box; degenerate axes map to
    /// `0.5`. Used to quantize coordinates for Morton encoding.
    pub fn normalize(&self, p: Point3) -> Point3 {
        let e = self.extent();
        let f = |v: f32, lo: f32, side: f32| if side > 0.0 { (v - lo) / side } else { 0.5 };
        Point3::new(
            f(p.x, self.min.x, e.x).clamp(0.0, 1.0),
            f(p.y, self.min.y, e.y).clamp(0.0, 1.0),
            f(p.z, self.min.z, e.z).clamp(0.0, 1.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_is_tight() {
        let pts =
            [Point3::new(1.0, 2.0, 3.0), Point3::new(-1.0, 5.0, 0.0), Point3::new(0.0, 0.0, 9.0)];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min(), Point3::new(-1.0, 0.0, 0.0));
        assert_eq!(b.max(), Point3::new(1.0, 5.0, 9.0));
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_corners_panic() {
        let _ = Aabb::new(Point3::new(1.0, 0.0, 0.0), Point3::ORIGIN);
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        assert!(b.contains(Point3::ORIGIN));
        assert!(b.contains(Point3::splat(1.0)));
        assert!(b.contains(Point3::splat(0.5)));
        assert!(!b.contains(Point3::new(1.1, 0.5, 0.5)));
    }

    #[test]
    fn distance_squared_inside_is_zero() {
        let b = Aabb::new(Point3::ORIGIN, Point3::splat(2.0));
        assert_eq!(b.distance_squared_to(Point3::splat(1.0)), 0.0);
        // 1 unit outside along x only.
        assert_eq!(b.distance_squared_to(Point3::new(3.0, 1.0, 1.0)), 1.0);
        // Corner distance: sqrt(3) away from (0,0,0).
        let d = b.distance_squared_to(Point3::new(-1.0, -1.0, -1.0));
        assert!((d - 3.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_maps_to_unit_cube() {
        let b = Aabb::new(Point3::new(-2.0, 0.0, 0.0), Point3::new(2.0, 4.0, 0.0));
        let n = b.normalize(Point3::new(0.0, 1.0, 0.0));
        assert_eq!(n, Point3::new(0.5, 0.25, 0.5)); // degenerate z maps to 0.5
    }

    #[test]
    fn expand_grows_box() {
        let mut b = Aabb::new(Point3::ORIGIN, Point3::splat(1.0));
        b.expand(Point3::new(2.0, -1.0, 0.5));
        assert_eq!(b.min(), Point3::new(0.0, -1.0, 0.0));
        assert_eq!(b.max(), Point3::new(2.0, 1.0, 1.0));
    }
}
