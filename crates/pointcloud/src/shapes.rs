//! Parametric 40-class shape dataset — the ModelNet40 stand-in.
//!
//! The paper evaluates classification on ModelNet40 \[58\]. That dataset is not
//! redistributable here, so this module builds a 40-class family of
//! parametric CAD-like shapes (each class a fixed composition of geometric
//! primitives with per-instance randomized proportions). What the
//! substitution must preserve — and does — is:
//!
//! * irregular point scattering (surface sampling, not a grid),
//! * non-uniform density and overlapping neighborhoods (Fig. 6 statistics),
//! * a classification task hard enough that accuracy differences between the
//!   original and delayed-aggregation formulations are measurable (Fig. 16).
//!
//! Class names mirror ModelNet40's so experiment output reads like the paper.

use crate::{Point3, PointCloud};
use rand::rngs::StdRng;
use rand::Rng;
use std::f32::consts::PI;

/// One of the 40 shape classes. The discriminant is the class label used by
/// the classification networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
#[allow(missing_docs)] // the variants are the dataset's class names
pub enum ShapeClass {
    Airplane = 0,
    Bathtub,
    Bed,
    Bench,
    Bookshelf,
    Bottle,
    Bowl,
    Car,
    Chair,
    Cone,
    Cup,
    Curtain,
    Desk,
    Door,
    Dresser,
    FlowerPot,
    GlassBox,
    Guitar,
    Keyboard,
    Lamp,
    Laptop,
    Mantel,
    Monitor,
    NightStand,
    Person,
    Piano,
    Plant,
    Radio,
    RangeHood,
    Sink,
    Sofa,
    Stairs,
    Stool,
    Table,
    Tent,
    Toilet,
    TvStand,
    Vase,
    Wardrobe,
    Sphere,
    // Extra primitive classes used by unit tests and examples; not part of
    // the 40-way label space.
    Cube,
    Cylinder,
    Torus,
}

impl ShapeClass {
    /// The 40 classes that form the classification label space.
    pub const ALL: [ShapeClass; 40] = [
        ShapeClass::Airplane,
        ShapeClass::Bathtub,
        ShapeClass::Bed,
        ShapeClass::Bench,
        ShapeClass::Bookshelf,
        ShapeClass::Bottle,
        ShapeClass::Bowl,
        ShapeClass::Car,
        ShapeClass::Chair,
        ShapeClass::Cone,
        ShapeClass::Cup,
        ShapeClass::Curtain,
        ShapeClass::Desk,
        ShapeClass::Door,
        ShapeClass::Dresser,
        ShapeClass::FlowerPot,
        ShapeClass::GlassBox,
        ShapeClass::Guitar,
        ShapeClass::Keyboard,
        ShapeClass::Lamp,
        ShapeClass::Laptop,
        ShapeClass::Mantel,
        ShapeClass::Monitor,
        ShapeClass::NightStand,
        ShapeClass::Person,
        ShapeClass::Piano,
        ShapeClass::Plant,
        ShapeClass::Radio,
        ShapeClass::RangeHood,
        ShapeClass::Sink,
        ShapeClass::Sofa,
        ShapeClass::Stairs,
        ShapeClass::Stool,
        ShapeClass::Table,
        ShapeClass::Tent,
        ShapeClass::Toilet,
        ShapeClass::TvStand,
        ShapeClass::Vase,
        ShapeClass::Wardrobe,
        ShapeClass::Sphere,
    ];

    /// Class label as an integer in `0..40` (extra primitive classes map
    /// beyond 39 and must not be used for classification).
    #[inline]
    pub fn label(self) -> u32 {
        self as u32
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Airplane => "airplane",
            ShapeClass::Bathtub => "bathtub",
            ShapeClass::Bed => "bed",
            ShapeClass::Bench => "bench",
            ShapeClass::Bookshelf => "bookshelf",
            ShapeClass::Bottle => "bottle",
            ShapeClass::Bowl => "bowl",
            ShapeClass::Car => "car",
            ShapeClass::Chair => "chair",
            ShapeClass::Cone => "cone",
            ShapeClass::Cup => "cup",
            ShapeClass::Curtain => "curtain",
            ShapeClass::Desk => "desk",
            ShapeClass::Door => "door",
            ShapeClass::Dresser => "dresser",
            ShapeClass::FlowerPot => "flower_pot",
            ShapeClass::GlassBox => "glass_box",
            ShapeClass::Guitar => "guitar",
            ShapeClass::Keyboard => "keyboard",
            ShapeClass::Lamp => "lamp",
            ShapeClass::Laptop => "laptop",
            ShapeClass::Mantel => "mantel",
            ShapeClass::Monitor => "monitor",
            ShapeClass::NightStand => "night_stand",
            ShapeClass::Person => "person",
            ShapeClass::Piano => "piano",
            ShapeClass::Plant => "plant",
            ShapeClass::Radio => "radio",
            ShapeClass::RangeHood => "range_hood",
            ShapeClass::Sink => "sink",
            ShapeClass::Sofa => "sofa",
            ShapeClass::Stairs => "stairs",
            ShapeClass::Stool => "stool",
            ShapeClass::Table => "table",
            ShapeClass::Tent => "tent",
            ShapeClass::Toilet => "toilet",
            ShapeClass::TvStand => "tv_stand",
            ShapeClass::Vase => "vase",
            ShapeClass::Wardrobe => "wardrobe",
            ShapeClass::Sphere => "sphere",
            ShapeClass::Cube => "cube",
            ShapeClass::Cylinder => "cylinder",
            ShapeClass::Torus => "torus",
        }
    }
}

/// A geometric primitive that can be surface-sampled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// Sphere of radius `r`.
    Sphere { r: f32 },
    /// Ellipsoid with semi-axes `(a, b, c)`.
    Ellipsoid { a: f32, b: f32, c: f32 },
    /// Axis-aligned box with half-extents `(hx, hy, hz)`.
    Cuboid { hx: f32, hy: f32, hz: f32 },
    /// Cylinder along +z with radius `r`, height `h` (includes caps).
    Cylinder { r: f32, h: f32 },
    /// Open tube along +z (no caps) — bottles, vases, poles.
    Tube { r: f32, h: f32 },
    /// Cone along +z with base radius `r`, height `h`.
    Cone { r: f32, h: f32 },
    /// Torus in the xy-plane with major radius `major` and tube radius `minor`.
    Torus { major: f32, minor: f32 },
    /// Rectangular plate in the xy-plane with half-extents `(hx, hy)`.
    Plate { hx: f32, hy: f32 },
    /// Hemisphere (upper half of a sphere of radius `r`) — bowls, sinks.
    Hemisphere { r: f32 },
}

impl Primitive {
    /// Approximate surface area, used to distribute sample counts across the
    /// primitives of a composite shape proportionally.
    pub fn area(&self) -> f32 {
        match *self {
            Primitive::Sphere { r } => 4.0 * PI * r * r,
            Primitive::Ellipsoid { a, b, c } => {
                // Knud Thomsen approximation (p = 1.6075).
                let p = 1.6075f32;
                let ap = a.powf(p);
                let bp = b.powf(p);
                let cp = c.powf(p);
                4.0 * PI * ((ap * bp + ap * cp + bp * cp) / 3.0).powf(1.0 / p)
            }
            Primitive::Cuboid { hx, hy, hz } => 8.0 * (hx * hy + hy * hz + hx * hz),
            Primitive::Cylinder { r, h } => 2.0 * PI * r * h + 2.0 * PI * r * r,
            Primitive::Tube { r, h } => 2.0 * PI * r * h,
            Primitive::Cone { r, h } => {
                let slant = (r * r + h * h).sqrt();
                PI * r * slant + PI * r * r
            }
            Primitive::Torus { major, minor } => 4.0 * PI * PI * major * minor,
            Primitive::Plate { hx, hy } => 4.0 * hx * hy,
            Primitive::Hemisphere { r } => 2.0 * PI * r * r,
        }
    }

    /// Samples one point uniformly (approximately, for the ellipsoid) on the
    /// primitive's surface.
    pub fn sample_surface(&self, rng: &mut StdRng) -> Point3 {
        match *self {
            Primitive::Sphere { r } => unit_sphere_dir(rng) * r,
            Primitive::Ellipsoid { a, b, c } => {
                let d = unit_sphere_dir(rng);
                Point3::new(d.x * a, d.y * b, d.z * c)
            }
            Primitive::Cuboid { hx, hy, hz } => {
                // Pick a face weighted by area, then a uniform point on it.
                let ax = hy * hz;
                let ay = hx * hz;
                let az = hx * hy;
                let t = rng.gen_range(0.0..(ax + ay + az));
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let u = rng.gen_range(-1.0f32..1.0);
                let v = rng.gen_range(-1.0f32..1.0);
                if t < ax {
                    Point3::new(sign * hx, u * hy, v * hz)
                } else if t < ax + ay {
                    Point3::new(u * hx, sign * hy, v * hz)
                } else {
                    Point3::new(u * hx, v * hy, sign * hz)
                }
            }
            Primitive::Cylinder { r, h } => {
                let side = 2.0 * PI * r * h;
                let caps = 2.0 * PI * r * r;
                if rng.gen_range(0.0..(side + caps)) < side {
                    let theta = rng.gen_range(0.0..(2.0 * PI));
                    Point3::new(r * theta.cos(), r * theta.sin(), rng.gen_range(0.0..h))
                } else {
                    let z = if rng.gen::<bool>() { h } else { 0.0 };
                    let d = unit_disk(rng);
                    Point3::new(d.0 * r, d.1 * r, z)
                }
            }
            Primitive::Tube { r, h } => {
                let theta = rng.gen_range(0.0..(2.0 * PI));
                Point3::new(r * theta.cos(), r * theta.sin(), rng.gen_range(0.0..h))
            }
            Primitive::Cone { r, h } => {
                let slant = PI * r * (r * r + h * h).sqrt();
                let base = PI * r * r;
                if rng.gen_range(0.0..(slant + base)) < slant {
                    // Uniform on lateral surface: radius ∝ sqrt(u).
                    let u: f32 = rng.gen();
                    let rr = r * u.sqrt();
                    let theta = rng.gen_range(0.0..(2.0 * PI));
                    Point3::new(rr * theta.cos(), rr * theta.sin(), h * (1.0 - rr / r))
                } else {
                    let d = unit_disk(rng);
                    Point3::new(d.0 * r, d.1 * r, 0.0)
                }
            }
            Primitive::Torus { major, minor } => {
                let u = rng.gen_range(0.0..(2.0 * PI));
                let v = rng.gen_range(0.0..(2.0 * PI));
                let ring = major + minor * v.cos();
                Point3::new(ring * u.cos(), ring * u.sin(), minor * v.sin())
            }
            Primitive::Plate { hx, hy } => Point3::new(
                rng.gen_range(-hx..hx.max(f32::MIN_POSITIVE)),
                rng.gen_range(-hy..hy.max(f32::MIN_POSITIVE)),
                0.0,
            ),
            Primitive::Hemisphere { r } => {
                let mut d = unit_sphere_dir(rng);
                d.z = d.z.abs();
                d * r
            }
        }
    }
}

fn unit_sphere_dir(rng: &mut StdRng) -> Point3 {
    // Marsaglia rejection sampling.
    loop {
        let x = rng.gen_range(-1.0f32..1.0);
        let y = rng.gen_range(-1.0f32..1.0);
        let z = rng.gen_range(-1.0f32..1.0);
        let n2 = x * x + y * y + z * z;
        if n2 > 1e-6 && n2 <= 1.0 {
            let n = n2.sqrt();
            return Point3::new(x / n, y / n, z / n);
        }
    }
}

fn unit_disk(rng: &mut StdRng) -> (f32, f32) {
    loop {
        let x = rng.gen_range(-1.0f32..1.0);
        let y = rng.gen_range(-1.0f32..1.0);
        if x * x + y * y <= 1.0 {
            return (x, y);
        }
    }
}

/// One placed primitive inside a composite shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Part {
    /// The primitive surface to sample.
    pub primitive: Primitive,
    /// Translation applied after sampling.
    pub offset: Point3,
    /// Rotation about the z axis in radians, applied before translation.
    pub yaw: f32,
}

impl Part {
    /// Places `primitive` at `offset` with no rotation.
    pub fn at(primitive: Primitive, offset: Point3) -> Self {
        Part { primitive, offset, yaw: 0.0 }
    }

    /// Places `primitive` at `offset`, yawed by `yaw` radians.
    pub fn at_yawed(primitive: Primitive, offset: Point3, yaw: f32) -> Self {
        Part { primitive, offset, yaw }
    }

    fn sample(&self, rng: &mut StdRng) -> Point3 {
        let p = self.primitive.sample_surface(rng);
        let (s, c) = self.yaw.sin_cos();
        Point3::new(c * p.x - s * p.y, s * p.x + c * p.y, p.z) + self.offset
    }
}

/// Builds the part list for `class`, with proportions perturbed by `v` — a
/// per-instance variation factor drawn from `[0.8, 1.2]` components.
///
/// Exposed so `parts.rs` can reuse the same geometry with per-part labels.
pub fn class_parts(class: ShapeClass, v: &mut StdRng) -> Vec<Part> {
    let mut j = |base: f32| base * v.gen_range(0.85..1.15f32);
    use Primitive::*;
    match class {
        ShapeClass::Airplane => vec![
            Part::at(Ellipsoid { a: j(1.0), b: j(0.16), c: j(0.16) }, Point3::ORIGIN),
            Part::at(Plate { hx: j(0.25), hy: j(0.9) }, Point3::new(0.1, 0.0, 0.02)),
            Part::at(Plate { hx: j(0.12), hy: j(0.35) }, Point3::new(-0.85, 0.0, 0.05)),
            Part::at(Plate { hx: j(0.12), hy: j(0.2) }, Point3::new(-0.9, 0.0, 0.18)),
        ],
        ShapeClass::Bathtub => vec![
            Part::at(Cuboid { hx: j(0.8), hy: j(0.45), hz: j(0.28) }, Point3::ORIGIN),
            Part::at(Ellipsoid { a: j(0.65), b: j(0.33), c: j(0.2) }, Point3::new(0.0, 0.0, 0.15)),
        ],
        ShapeClass::Bed => vec![
            Part::at(Cuboid { hx: j(0.9), hy: j(0.55), hz: j(0.18) }, Point3::ORIGIN),
            Part::at(Plate { hx: j(0.55), hy: j(0.55) }, Point3::new(-0.9, 0.0, 0.35)),
            Part::at(Cuboid { hx: j(0.85), hy: j(0.5), hz: j(0.08) }, Point3::new(0.0, 0.0, 0.22)),
        ],
        ShapeClass::Bench => vec![
            Part::at(Cuboid { hx: j(0.9), hy: j(0.22), hz: j(0.05) }, Point3::new(0.0, 0.0, 0.4)),
            Part::at(Cuboid { hx: j(0.05), hy: j(0.2), hz: j(0.2) }, Point3::new(-0.7, 0.0, 0.2)),
            Part::at(Cuboid { hx: j(0.05), hy: j(0.2), hz: j(0.2) }, Point3::new(0.7, 0.0, 0.2)),
        ],
        ShapeClass::Bookshelf => vec![
            Part::at(Cuboid { hx: j(0.5), hy: j(0.18), hz: j(0.95) }, Point3::ORIGIN),
            Part::at(Plate { hx: j(0.48), hy: j(0.17) }, Point3::new(0.0, 0.0, 0.45)),
            Part::at(Plate { hx: j(0.48), hy: j(0.17) }, Point3::new(0.0, 0.0, 0.0)),
            Part::at(Plate { hx: j(0.48), hy: j(0.17) }, Point3::new(0.0, 0.0, -0.45)),
        ],
        ShapeClass::Bottle => vec![
            Part::at(Tube { r: j(0.25), h: j(0.8) }, Point3::new(0.0, 0.0, -0.5)),
            Part::at(Cone { r: j(0.25), h: j(0.3) }, Point3::new(0.0, 0.0, 0.3)),
            Part::at(Tube { r: j(0.08), h: j(0.25) }, Point3::new(0.0, 0.0, 0.55)),
        ],
        ShapeClass::Bowl => vec![Part::at(Hemisphere { r: j(0.8) }, Point3::ORIGIN)],
        ShapeClass::Car => vec![
            Part::at(Cuboid { hx: j(0.9), hy: j(0.4), hz: j(0.2) }, Point3::ORIGIN),
            Part::at(
                Cuboid { hx: j(0.45), hy: j(0.35), hz: j(0.15) },
                Point3::new(-0.1, 0.0, 0.33),
            ),
            Part::at_yawed(Cylinder { r: j(0.15), h: j(0.08) }, Point3::new(0.5, 0.42, -0.2), 0.0),
            Part::at_yawed(Cylinder { r: j(0.15), h: j(0.08) }, Point3::new(-0.5, 0.42, -0.2), 0.0),
            Part::at_yawed(Cylinder { r: j(0.15), h: j(0.08) }, Point3::new(0.5, -0.5, -0.2), 0.0),
            Part::at_yawed(Cylinder { r: j(0.15), h: j(0.08) }, Point3::new(-0.5, -0.5, -0.2), 0.0),
        ],
        ShapeClass::Chair => vec![
            Part::at(Plate { hx: j(0.4), hy: j(0.4) }, Point3::new(0.0, 0.0, 0.0)),
            Part::at(
                Cuboid { hx: j(0.4), hy: j(0.04), hz: j(0.45) },
                Point3::new(0.0, -0.38, 0.45),
            ),
            Part::at(Tube { r: j(0.035), h: j(0.45) }, Point3::new(0.33, 0.33, -0.45)),
            Part::at(Tube { r: j(0.035), h: j(0.45) }, Point3::new(-0.33, 0.33, -0.45)),
            Part::at(Tube { r: j(0.035), h: j(0.45) }, Point3::new(0.33, -0.33, -0.45)),
            Part::at(Tube { r: j(0.035), h: j(0.45) }, Point3::new(-0.33, -0.33, -0.45)),
        ],
        ShapeClass::Cone => {
            vec![Part::at(Cone { r: j(0.6), h: j(1.2) }, Point3::new(0.0, 0.0, -0.6))]
        }
        ShapeClass::Cup => vec![
            Part::at(Tube { r: j(0.35), h: j(0.8) }, Point3::new(0.0, 0.0, -0.4)),
            Part::at(Torus { major: j(0.42), minor: j(0.05) }, Point3::new(0.35, 0.0, 0.0)),
        ],
        ShapeClass::Curtain => vec![
            Part::at(Plate { hx: j(0.7), hy: j(0.02) }, Point3::new(0.0, 0.0, 0.0)),
            Part::at(Plate { hx: j(0.7), hy: j(0.02) }, Point3::new(0.0, 0.08, 0.1)),
            Part::at(Tube { r: j(0.03), h: j(1.5) }, Point3::new(0.0, 0.0, 0.9)),
        ],
        ShapeClass::Desk => vec![
            Part::at(Plate { hx: j(0.9), hy: j(0.5) }, Point3::new(0.0, 0.0, 0.4)),
            Part::at(Cuboid { hx: j(0.25), hy: j(0.45), hz: j(0.4) }, Point3::new(0.6, 0.0, 0.0)),
            Part::at(Cuboid { hx: j(0.25), hy: j(0.45), hz: j(0.4) }, Point3::new(-0.6, 0.0, 0.0)),
        ],
        ShapeClass::Door => vec![
            Part::at(Cuboid { hx: j(0.45), hy: j(0.04), hz: j(1.0) }, Point3::ORIGIN),
            Part::at(Sphere { r: j(0.05) }, Point3::new(0.35, 0.08, 0.0)),
        ],
        ShapeClass::Dresser => vec![
            Part::at(Cuboid { hx: j(0.6), hy: j(0.35), hz: j(0.6) }, Point3::ORIGIN),
            Part::at(Plate { hx: j(0.55), hy: j(0.02) }, Point3::new(0.0, 0.36, 0.2)),
            Part::at(Plate { hx: j(0.55), hy: j(0.02) }, Point3::new(0.0, 0.36, -0.2)),
        ],
        ShapeClass::FlowerPot => vec![
            Part::at(Cone { r: j(0.5), h: j(0.6) }, Point3::new(0.0, 0.0, -0.6)),
            Part::at(Sphere { r: j(0.3) }, Point3::new(0.0, 0.0, 0.35)),
        ],
        ShapeClass::GlassBox => {
            vec![Part::at(Cuboid { hx: j(0.6), hy: j(0.45), hz: j(0.45) }, Point3::ORIGIN)]
        }
        ShapeClass::Guitar => vec![
            Part::at(Ellipsoid { a: j(0.45), b: j(0.35), c: j(0.1) }, Point3::new(0.0, 0.0, -0.4)),
            Part::at(Ellipsoid { a: j(0.3), b: j(0.26), c: j(0.1) }, Point3::new(0.0, 0.0, 0.05)),
            Part::at(Cuboid { hx: j(0.05), hy: j(0.02), hz: j(0.6) }, Point3::new(0.0, 0.0, 0.6)),
        ],
        ShapeClass::Keyboard => {
            vec![Part::at(Cuboid { hx: j(0.9), hy: j(0.35), hz: j(0.03) }, Point3::ORIGIN)]
        }
        ShapeClass::Lamp => vec![
            Part::at(Cylinder { r: j(0.35), h: j(0.06) }, Point3::new(0.0, 0.0, -0.9)),
            Part::at(Tube { r: j(0.04), h: j(1.3) }, Point3::new(0.0, 0.0, -0.85)),
            Part::at(Cone { r: j(0.4), h: j(0.4) }, Point3::new(0.0, 0.0, 0.45)),
        ],
        ShapeClass::Laptop => vec![
            Part::at(Cuboid { hx: j(0.55), hy: j(0.4), hz: j(0.02) }, Point3::ORIGIN),
            Part::at(Cuboid { hx: j(0.55), hy: j(0.02), hz: j(0.4) }, Point3::new(0.0, -0.4, 0.4)),
        ],
        ShapeClass::Mantel => vec![
            Part::at(Cuboid { hx: j(0.8), hy: j(0.2), hz: j(0.08) }, Point3::new(0.0, 0.0, 0.55)),
            Part::at(Cuboid { hx: j(0.12), hy: j(0.18), hz: j(0.55) }, Point3::new(0.6, 0.0, 0.0)),
            Part::at(Cuboid { hx: j(0.12), hy: j(0.18), hz: j(0.55) }, Point3::new(-0.6, 0.0, 0.0)),
        ],
        ShapeClass::Monitor => vec![
            Part::at(Cuboid { hx: j(0.7), hy: j(0.04), hz: j(0.45) }, Point3::new(0.0, 0.0, 0.3)),
            Part::at(Tube { r: j(0.06), h: j(0.35) }, Point3::new(0.0, 0.0, -0.5)),
            Part::at(Plate { hx: j(0.3), hy: j(0.2) }, Point3::new(0.0, 0.0, -0.55)),
        ],
        ShapeClass::NightStand => vec![
            Part::at(Cuboid { hx: j(0.4), hy: j(0.35), hz: j(0.45) }, Point3::ORIGIN),
            Part::at(Sphere { r: j(0.04) }, Point3::new(0.0, 0.38, 0.15)),
        ],
        ShapeClass::Person => vec![
            Part::at(Sphere { r: j(0.16) }, Point3::new(0.0, 0.0, 0.75)),
            Part::at(Ellipsoid { a: j(0.22), b: j(0.14), c: j(0.4) }, Point3::new(0.0, 0.0, 0.2)),
            Part::at(Tube { r: j(0.06), h: j(0.65) }, Point3::new(0.12, 0.0, -0.85)),
            Part::at(Tube { r: j(0.06), h: j(0.65) }, Point3::new(-0.12, 0.0, -0.85)),
            Part::at_yawed(Tube { r: j(0.045), h: j(0.55) }, Point3::new(0.3, 0.0, -0.2), 0.3),
            Part::at_yawed(Tube { r: j(0.045), h: j(0.55) }, Point3::new(-0.3, 0.0, -0.2), -0.3),
        ],
        ShapeClass::Piano => vec![
            Part::at(Cuboid { hx: j(0.85), hy: j(0.35), hz: j(0.5) }, Point3::new(0.0, 0.0, 0.2)),
            Part::at(
                Cuboid { hx: j(0.8), hy: j(0.15), hz: j(0.03) },
                Point3::new(0.0, -0.45, 0.05),
            ),
            Part::at(Tube { r: j(0.04), h: j(0.5) }, Point3::new(0.7, -0.45, -0.6)),
            Part::at(Tube { r: j(0.04), h: j(0.5) }, Point3::new(-0.7, -0.45, -0.6)),
        ],
        ShapeClass::Plant => vec![
            Part::at(Cone { r: j(0.3), h: j(0.35) }, Point3::new(0.0, 0.0, -0.9)),
            Part::at(Tube { r: j(0.03), h: j(0.6) }, Point3::new(0.0, 0.0, -0.55)),
            Part::at(Ellipsoid { a: j(0.5), b: j(0.5), c: j(0.4) }, Point3::new(0.0, 0.0, 0.4)),
        ],
        ShapeClass::Radio => vec![
            Part::at(Cuboid { hx: j(0.55), hy: j(0.2), hz: j(0.35) }, Point3::ORIGIN),
            Part::at(Tube { r: j(0.015), h: j(0.55) }, Point3::new(0.3, 0.0, 0.35)),
        ],
        ShapeClass::RangeHood => vec![
            Part::at(Cone { r: j(0.65), h: j(0.45) }, Point3::new(0.0, 0.0, -0.4)),
            Part::at(Cuboid { hx: j(0.2), hy: j(0.2), hz: j(0.45) }, Point3::new(0.0, 0.0, 0.45)),
        ],
        ShapeClass::Sink => vec![
            Part::at(Hemisphere { r: j(0.55) }, Point3::new(0.0, 0.0, -0.3)),
            Part::at(Plate { hx: j(0.75), hy: j(0.55) }, Point3::new(0.0, 0.0, 0.25)),
            Part::at(Tube { r: j(0.035), h: j(0.3) }, Point3::new(0.0, 0.45, 0.25)),
        ],
        ShapeClass::Sofa => vec![
            Part::at(Cuboid { hx: j(0.9), hy: j(0.4), hz: j(0.25) }, Point3::ORIGIN),
            Part::at(Cuboid { hx: j(0.9), hy: j(0.12), hz: j(0.35) }, Point3::new(0.0, -0.4, 0.4)),
            Part::at(Cuboid { hx: j(0.12), hy: j(0.4), hz: j(0.2) }, Point3::new(0.85, 0.0, 0.3)),
            Part::at(Cuboid { hx: j(0.12), hy: j(0.4), hz: j(0.2) }, Point3::new(-0.85, 0.0, 0.3)),
        ],
        ShapeClass::Stairs => (0..5)
            .map(|i| {
                Part::at(
                    Primitive::Cuboid { hx: 0.5, hy: 0.12, hz: 0.05 },
                    Point3::new(0.0, -0.5 + 0.22 * i as f32, -0.5 + 0.22 * i as f32),
                )
            })
            .collect(),
        ShapeClass::Stool => vec![
            Part::at(Cylinder { r: j(0.35), h: j(0.08) }, Point3::new(0.0, 0.0, 0.3)),
            Part::at(Tube { r: j(0.04), h: j(0.7) }, Point3::new(0.2, 0.2, -0.45)),
            Part::at(Tube { r: j(0.04), h: j(0.7) }, Point3::new(-0.2, 0.2, -0.45)),
            Part::at(Tube { r: j(0.04), h: j(0.7) }, Point3::new(0.0, -0.28, -0.45)),
        ],
        ShapeClass::Table => vec![
            Part::at(Plate { hx: j(0.8), hy: j(0.8) }, Point3::new(0.0, 0.0, 0.4)),
            Part::at(Tube { r: j(0.05), h: j(0.8) }, Point3::new(0.65, 0.65, -0.4)),
            Part::at(Tube { r: j(0.05), h: j(0.8) }, Point3::new(-0.65, 0.65, -0.4)),
            Part::at(Tube { r: j(0.05), h: j(0.8) }, Point3::new(0.65, -0.65, -0.4)),
            Part::at(Tube { r: j(0.05), h: j(0.8) }, Point3::new(-0.65, -0.65, -0.4)),
        ],
        ShapeClass::Tent => {
            vec![Part::at(Cone { r: j(0.85), h: j(0.9) }, Point3::new(0.0, 0.0, -0.45))]
        }
        ShapeClass::Toilet => vec![
            Part::at(Ellipsoid { a: j(0.35), b: j(0.45), c: j(0.15) }, Point3::new(0.0, 0.1, 0.0)),
            Part::at(
                Cuboid { hx: j(0.3), hy: j(0.12), hz: j(0.35) },
                Point3::new(0.0, -0.45, 0.25),
            ),
            Part::at(Cylinder { r: j(0.25), h: j(0.35) }, Point3::new(0.0, 0.1, -0.5)),
        ],
        ShapeClass::TvStand => vec![
            Part::at(Cuboid { hx: j(0.9), hy: j(0.3), hz: j(0.25) }, Point3::ORIGIN),
            Part::at(Plate { hx: j(0.85), hy: j(0.28) }, Point3::new(0.0, 0.0, 0.28)),
        ],
        ShapeClass::Vase => vec![
            Part::at(Tube { r: j(0.3), h: j(0.5) }, Point3::new(0.0, 0.0, -0.6)),
            Part::at(Ellipsoid { a: j(0.4), b: j(0.4), c: j(0.3) }, Point3::new(0.0, 0.0, 0.0)),
            Part::at(Tube { r: j(0.15), h: j(0.4) }, Point3::new(0.0, 0.0, 0.3)),
        ],
        ShapeClass::Wardrobe => vec![
            Part::at(Cuboid { hx: j(0.55), hy: j(0.35), hz: j(1.0) }, Point3::ORIGIN),
            Part::at(Sphere { r: j(0.035) }, Point3::new(0.1, 0.37, 0.0)),
            Part::at(Sphere { r: j(0.035) }, Point3::new(-0.1, 0.37, 0.0)),
        ],
        ShapeClass::Sphere => vec![Part::at(Sphere { r: j(0.9) }, Point3::ORIGIN)],
        ShapeClass::Cube => {
            vec![Part::at(Cuboid { hx: j(0.7), hy: j(0.7), hz: j(0.7) }, Point3::ORIGIN)]
        }
        ShapeClass::Cylinder => {
            vec![Part::at(Cylinder { r: j(0.45), h: j(1.3) }, Point3::new(0.0, 0.0, -0.65))]
        }
        ShapeClass::Torus => {
            vec![Part::at(Torus { major: j(0.6), minor: j(0.22) }, Point3::ORIGIN)]
        }
    }
}

/// Samples `n` points from the surface of one random instance of `class`,
/// normalized to the unit sphere (ModelNet-style preprocessing).
///
/// Instances drawn with different seeds differ in proportions, so a
/// classifier must learn shape, not memorize coordinates.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sample_shape(class: ShapeClass, n: usize, seed: u64) -> PointCloud {
    assert!(n > 0, "cannot sample an empty shape");
    let mut rng = crate::seeded_rng(seed ^ (u64::from(class.label()) << 32));
    let parts = class_parts(class, &mut rng);
    let mut cloud = sample_parts(&parts, n, &mut rng);
    cloud.normalize_to_unit_sphere();
    cloud
}

/// Samples `n` points across `parts`, allocating counts proportionally to
/// surface area (with every part receiving at least one point).
pub fn sample_parts(parts: &[Part], n: usize, rng: &mut StdRng) -> PointCloud {
    assert!(!parts.is_empty(), "shape must have at least one part");
    let areas: Vec<f32> = parts.iter().map(|p| p.primitive.area()).collect();
    let total: f32 = areas.iter().sum();
    let mut cloud = PointCloud::with_capacity(n);
    let mut assigned = 0usize;
    for (i, part) in parts.iter().enumerate() {
        let share = if i + 1 == parts.len() {
            n - assigned
        } else {
            (((areas[i] / total) * n as f32).round() as usize)
                .max(1)
                .min(n - assigned - (parts.len() - 1 - i))
        };
        for _ in 0..share {
            cloud.push(part.sample(rng));
        }
        assigned += share;
    }
    debug_assert_eq!(cloud.len(), n);
    cloud
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_classes_have_distinct_labels() {
        let mut labels: Vec<u32> = ShapeClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 40);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[39], 39);
    }

    #[test]
    fn every_class_samples_requested_count() {
        for &class in &ShapeClass::ALL {
            let cloud = sample_shape(class, 257, 42);
            assert_eq!(cloud.len(), 257, "class {}", class.name());
            assert!(cloud.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn shapes_are_normalized_to_unit_sphere() {
        for &class in &[ShapeClass::Airplane, ShapeClass::Table, ShapeClass::Vase] {
            let cloud = sample_shape(class, 512, 7);
            let max_norm = cloud.iter().map(|p| p.norm()).fold(0.0f32, f32::max);
            assert!(max_norm <= 1.0 + 1e-5, "class {}: {max_norm}", class.name());
            assert!(cloud.centroid().norm() < 1e-4);
        }
    }

    #[test]
    fn different_seeds_give_different_instances() {
        let a = sample_shape(ShapeClass::Chair, 64, 1);
        let b = sample_shape(ShapeClass::Chair, 64, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = sample_shape(ShapeClass::Guitar, 64, 5);
        let b = sample_shape(ShapeClass::Guitar, 64, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn sphere_samples_lie_on_sphere_before_normalization() {
        let mut rng = crate::seeded_rng(0);
        let prim = Primitive::Sphere { r: 2.0 };
        for _ in 0..100 {
            let p = prim.sample_surface(&mut rng);
            assert!((p.norm() - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn torus_samples_satisfy_implicit_equation() {
        let mut rng = crate::seeded_rng(0);
        let (major, minor) = (1.0f32, 0.25f32);
        let prim = Primitive::Torus { major, minor };
        for _ in 0..100 {
            let p = prim.sample_surface(&mut rng);
            let ring = (p.x * p.x + p.y * p.y).sqrt() - major;
            let d = (ring * ring + p.z * p.z).sqrt();
            assert!((d - minor).abs() < 1e-4);
        }
    }

    #[test]
    fn cuboid_samples_lie_on_faces() {
        let mut rng = crate::seeded_rng(0);
        let prim = Primitive::Cuboid { hx: 1.0, hy: 2.0, hz: 3.0 };
        for _ in 0..200 {
            let p = prim.sample_surface(&mut rng);
            let on_face = (p.x.abs() - 1.0).abs() < 1e-5
                || (p.y.abs() - 2.0).abs() < 1e-5
                || (p.z.abs() - 3.0).abs() < 1e-5;
            assert!(on_face, "point {p} not on any face");
            assert!(p.x.abs() <= 1.0 + 1e-5 && p.y.abs() <= 2.0 + 1e-5 && p.z.abs() <= 3.0 + 1e-5);
        }
    }

    #[test]
    fn area_is_positive_for_all_primitives() {
        let prims = [
            Primitive::Sphere { r: 1.0 },
            Primitive::Ellipsoid { a: 1.0, b: 0.5, c: 0.25 },
            Primitive::Cuboid { hx: 1.0, hy: 1.0, hz: 1.0 },
            Primitive::Cylinder { r: 0.5, h: 2.0 },
            Primitive::Tube { r: 0.5, h: 2.0 },
            Primitive::Cone { r: 0.5, h: 1.0 },
            Primitive::Torus { major: 1.0, minor: 0.2 },
            Primitive::Plate { hx: 1.0, hy: 2.0 },
            Primitive::Hemisphere { r: 1.0 },
        ];
        for p in prims {
            assert!(p.area() > 0.0, "{p:?}");
        }
    }

    #[test]
    fn sphere_area_matches_formula() {
        let a = Primitive::Sphere { r: 2.0 }.area();
        assert!((a - 16.0 * PI).abs() < 1e-3);
    }
}
