//! Point-cloud file I/O: ASCII PLY and XYZ.
//!
//! The experiments run entirely on synthetic generators, but a library a
//! downstream user would adopt must read their scans and write its outputs.
//! Two interchange formats are supported:
//!
//! * **XYZ** — one `x y z [label]` line per point, whitespace separated,
//!   `#` comments;
//! * **PLY** (ASCII) — the subset real scanners emit: a `vertex` element
//!   with `x`/`y`/`z` float properties and an optional integer label-like
//!   property (`label`, `class`, or `scalar_*`).

use crate::{Point3, PointCloud};
use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum ReadCloudError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file violates the format; the message says where and why.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for ReadCloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadCloudError::Io(e) => write!(f, "i/o error: {e}"),
            ReadCloudError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadCloudError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadCloudError::Io(e) => Some(e),
            ReadCloudError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for ReadCloudError {
    fn from(e: io::Error) -> Self {
        ReadCloudError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> ReadCloudError {
    ReadCloudError::Parse { line, message: message.into() }
}

/// Reads an XYZ file: `x y z [label]` per line, `#` comments, blank lines
/// ignored. Labels must appear on every line or none.
///
/// # Errors
///
/// Returns [`ReadCloudError`] on I/O failure, malformed coordinates, or
/// inconsistent label columns.
pub fn read_xyz<R: Read>(reader: R) -> Result<PointCloud, ReadCloudError> {
    let mut points = Vec::new();
    let mut labels: Vec<u32> = Vec::new();
    let mut has_labels: Option<bool> = None;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let content = line.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() != 3 && fields.len() != 4 {
            return Err(parse_err(
                line_no,
                format!("expected 3 or 4 fields, got {}", fields.len()),
            ));
        }
        let coord = |s: &str| -> Result<f32, ReadCloudError> {
            let v: f32 =
                s.parse().map_err(|_| parse_err(line_no, format!("bad coordinate '{s}'")))?;
            if !v.is_finite() {
                return Err(parse_err(line_no, format!("non-finite coordinate '{s}'")));
            }
            Ok(v)
        };
        points.push(Point3::new(coord(fields[0])?, coord(fields[1])?, coord(fields[2])?));
        let labelled = fields.len() == 4;
        match has_labels {
            None => has_labels = Some(labelled),
            Some(expected) if expected != labelled => {
                return Err(parse_err(line_no, "inconsistent label column"));
            }
            _ => {}
        }
        if labelled {
            labels.push(
                fields[3]
                    .parse()
                    .map_err(|_| parse_err(line_no, format!("bad label '{}'", fields[3])))?,
            );
        }
    }
    Ok(if has_labels == Some(true) {
        PointCloud::from_labelled_points(points, labels)
    } else {
        PointCloud::from_points(points)
    })
}

/// Writes a cloud in XYZ format (labels appended when present).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_xyz<W: Write>(cloud: &PointCloud, mut writer: W) -> io::Result<()> {
    match cloud.labels() {
        Some(labels) => {
            for (p, l) in cloud.points().iter().zip(labels) {
                writeln!(writer, "{} {} {} {}", p.x, p.y, p.z, l)?;
            }
        }
        None => {
            for p in cloud.points() {
                writeln!(writer, "{} {} {}", p.x, p.y, p.z)?;
            }
        }
    }
    Ok(())
}

/// Reads an ASCII PLY file's vertex element.
///
/// Supports `float`/`double` `x`, `y`, `z` properties in any order plus an
/// optional integer label property named `label` or `class`. Other vertex
/// properties (colors, normals) are skipped; other elements (faces) are
/// ignored.
///
/// # Errors
///
/// Returns [`ReadCloudError`] when the header or vertex rows are malformed
/// or the format is binary (unsupported).
pub fn read_ply<R: Read>(reader: R) -> Result<PointCloud, ReadCloudError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let mut next_line = |expect: &str| -> Result<(usize, String), ReadCloudError> {
        match lines.next() {
            Some((i, Ok(l))) => Ok((i + 1, l)),
            Some((i, Err(e))) => Err(parse_err(i + 1, format!("{e}"))),
            None => Err(parse_err(0, format!("unexpected end of file, expected {expect}"))),
        }
    };

    let (n, magic) = next_line("'ply'")?;
    if magic.trim() != "ply" {
        return Err(parse_err(n, "missing 'ply' magic"));
    }

    let mut vertex_count: Option<usize> = None;
    let mut in_vertex_element = false;
    // (property index → role): 0 = x, 1 = y, 2 = z, 3 = label.
    let mut columns: Vec<Option<usize>> = Vec::new();
    loop {
        let (n, line) = next_line("'end_header'")?;
        let line = line.trim().to_owned();
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["end_header"] => break,
            ["format", kind, _version] => {
                if *kind != "ascii" {
                    return Err(parse_err(n, format!("unsupported PLY format '{kind}'")));
                }
            }
            ["comment", ..] | ["obj_info", ..] => {}
            ["element", "vertex", count] => {
                vertex_count = Some(
                    count
                        .parse()
                        .map_err(|_| parse_err(n, format!("bad vertex count '{count}'")))?,
                );
                in_vertex_element = true;
            }
            ["element", ..] => in_vertex_element = false,
            ["property", _ty, name] if in_vertex_element => {
                let role = match *name {
                    "x" => Some(0),
                    "y" => Some(1),
                    "z" => Some(2),
                    "label" | "class" => Some(3),
                    other if other.starts_with("scalar_") => Some(3),
                    _ => None,
                };
                columns.push(role);
            }
            ["property", ..] => {}
            [] => {}
            _ => return Err(parse_err(n, format!("unrecognized header line '{line}'"))),
        }
    }
    let vertex_count = vertex_count.ok_or_else(|| parse_err(0, "header has no vertex element"))?;
    for (role, name) in [(0usize, "x"), (1, "y"), (2, "z")] {
        if !columns.contains(&Some(role)) {
            return Err(parse_err(0, format!("vertex element lacks property '{name}'")));
        }
    }
    let has_label = columns.contains(&Some(3));

    let mut cloud = PointCloud::with_capacity(vertex_count);
    let mut labelled = PointCloud::new();
    for _ in 0..vertex_count {
        let (n, line) = next_line("a vertex row")?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < columns.len() {
            return Err(parse_err(
                n,
                format!(
                    "vertex row has {} fields, header declares {}",
                    fields.len(),
                    columns.len()
                ),
            ));
        }
        let mut coords = [0.0f32; 3];
        let mut label = 0u32;
        for (value, role) in fields.iter().zip(&columns) {
            match role {
                Some(r @ 0..=2) => {
                    coords[*r] = value
                        .parse()
                        .map_err(|_| parse_err(n, format!("bad coordinate '{value}'")))?;
                }
                Some(_) => {
                    label = value
                        .parse::<f64>()
                        .map_err(|_| parse_err(n, format!("bad label '{value}'")))?
                        as u32;
                }
                None => {}
            }
        }
        let p = Point3::new(coords[0], coords[1], coords[2]);
        if has_label {
            labelled.push_labelled(p, label);
        } else {
            cloud.push(p);
        }
    }
    Ok(if has_label { labelled } else { cloud })
}

/// Writes a cloud as ASCII PLY (with a `label` property when present).
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_ply<W: Write>(cloud: &PointCloud, mut writer: W) -> io::Result<()> {
    writeln!(writer, "ply")?;
    writeln!(writer, "format ascii 1.0")?;
    writeln!(writer, "comment generated by mesorasi-pointcloud")?;
    writeln!(writer, "element vertex {}", cloud.len())?;
    writeln!(writer, "property float x")?;
    writeln!(writer, "property float y")?;
    writeln!(writer, "property float z")?;
    if cloud.labels().is_some() {
        writeln!(writer, "property uint label")?;
    }
    writeln!(writer, "end_header")?;
    write_xyz(cloud, writer)
}

/// Convenience: reads a cloud from a path, dispatching on the extension
/// (`.ply` → PLY, anything else → XYZ).
///
/// # Errors
///
/// Returns [`ReadCloudError`] on I/O or parse failure.
pub fn read_path(path: &Path) -> Result<PointCloud, ReadCloudError> {
    let file = fs::File::open(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("ply")) {
        read_ply(file)
    } else {
        read_xyz(file)
    }
}

/// Convenience: writes a cloud to a path, dispatching on the extension.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_path(cloud: &PointCloud, path: &Path) -> io::Result<()> {
    let file = fs::File::create(path)?;
    if path.extension().is_some_and(|e| e.eq_ignore_ascii_case("ply")) {
        write_ply(cloud, file)
    } else {
        write_xyz(cloud, file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::{sample_shape, ShapeClass};

    #[test]
    fn xyz_round_trip_unlabelled() {
        let cloud = sample_shape(ShapeClass::Chair, 64, 1);
        let mut buf = Vec::new();
        write_xyz(&cloud, &mut buf).unwrap();
        let back = read_xyz(&buf[..]).unwrap();
        assert_eq!(back.len(), 64);
        for (a, b) in cloud.iter().zip(back.iter()) {
            assert!(a.distance(*b) < 1e-5);
        }
        assert!(back.labels().is_none());
    }

    #[test]
    fn xyz_round_trip_labelled() {
        let cloud = crate::parts::sample_labelled(crate::parts::categories()[0], 48, 2);
        let mut buf = Vec::new();
        write_xyz(&cloud, &mut buf).unwrap();
        let back = read_xyz(&buf[..]).unwrap();
        assert_eq!(back.labels(), cloud.labels());
    }

    #[test]
    fn xyz_ignores_comments_and_blanks() {
        let text = "# header\n\n1 2 3\n 4 5 6 # trailing\n";
        let cloud = read_xyz(text.as_bytes()).unwrap();
        assert_eq!(cloud.len(), 2);
        assert_eq!(cloud.point(1), Point3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn xyz_rejects_bad_rows() {
        assert!(matches!(read_xyz("1 2\n".as_bytes()), Err(ReadCloudError::Parse { line: 1, .. })));
        assert!(matches!(
            read_xyz("1 2 zebra\n".as_bytes()),
            Err(ReadCloudError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_xyz("1 2 3\n4 5 6 7\n".as_bytes()),
            Err(ReadCloudError::Parse { line: 2, .. })
        ));
        assert!(read_xyz("1 2 inf\n".as_bytes()).is_err());
    }

    #[test]
    fn ply_round_trip_labelled() {
        let cloud = crate::parts::sample_labelled(crate::parts::categories()[1], 32, 3);
        let mut buf = Vec::new();
        write_ply(&cloud, &mut buf).unwrap();
        let back = read_ply(&buf[..]).unwrap();
        assert_eq!(back.len(), 32);
        assert_eq!(back.labels(), cloud.labels());
    }

    #[test]
    fn ply_parses_extra_properties_and_any_order() {
        let text = "ply\nformat ascii 1.0\nelement vertex 2\n\
                    property float z\nproperty float x\nproperty uchar red\n\
                    property float y\nend_header\n\
                    3 1 255 2\n6 4 0 5\n";
        let cloud = read_ply(text.as_bytes()).unwrap();
        assert_eq!(cloud.point(0), Point3::new(1.0, 2.0, 3.0));
        assert_eq!(cloud.point(1), Point3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn ply_rejects_binary_and_missing_coords() {
        let binary = "ply\nformat binary_little_endian 1.0\nelement vertex 0\nend_header\n";
        assert!(read_ply(binary.as_bytes()).is_err());
        let no_z = "ply\nformat ascii 1.0\nelement vertex 1\n\
                    property float x\nproperty float y\nend_header\n1 2\n";
        assert!(read_ply(no_z.as_bytes()).is_err());
    }

    #[test]
    fn ply_truncated_body_reports_error() {
        let text = "ply\nformat ascii 1.0\nelement vertex 3\n\
                    property float x\nproperty float y\nproperty float z\nend_header\n1 2 3\n";
        assert!(read_ply(text.as_bytes()).is_err());
    }

    #[test]
    fn path_dispatch_round_trip() {
        let dir = std::env::temp_dir();
        let ply = dir.join("mesorasi_io_test.ply");
        let xyz = dir.join("mesorasi_io_test.xyz");
        let cloud = sample_shape(ShapeClass::Torus, 16, 9);
        for path in [&ply, &xyz] {
            write_path(&cloud, path).unwrap();
            let back = read_path(path).unwrap();
            assert_eq!(back.len(), 16);
            let _ = fs::remove_file(path);
        }
    }
}
