//! Z-order (Morton) curves for spatially-coherent point ordering.
//!
//! The Aggregation Unit's PFT buffer interleaves rows across banks by the
//! low bits of the row index (paper §V-B: "an LSB-interleaving reduces bank
//! conflicts"). That only helps when spatially-close points — which are what
//! a neighbor search returns — have *close indices*. Real datasets have this
//! property because scanners emit points in sweep order; our synthetic
//! generators recover it by sorting points along a Morton curve. The
//! `ablations` bench quantifies how many extra conflict rounds a shuffled
//! ordering costs.

use crate::{Aabb, Point3, PointCloud};

/// Number of bits per axis in a Morton code (3 × 21 = 63 bits total).
pub const BITS_PER_AXIS: u32 = 21;

/// Spreads the low 21 bits of `v` so that there are two zero bits between
/// every payload bit (the classic "part 1 by 2" bit trick).
#[inline]
fn part1by2(v: u32) -> u64 {
    let mut x = u64::from(v) & 0x1f_ffff; // keep 21 bits
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`part1by2`]: compacts every third bit into the low 21 bits.
#[inline]
fn compact1by2(x: u64) -> u32 {
    let mut v = x & 0x1249_2492_4924_9249;
    v = (v ^ (v >> 2)) & 0x10c3_0c30_c30c_30c3;
    v = (v ^ (v >> 4)) & 0x100f_00f0_0f00_f00f;
    v = (v ^ (v >> 8)) & 0x001f_0000_ff00_00ff;
    v = (v ^ (v >> 16)) & 0x001f_0000_0000_ffff;
    v = (v ^ (v >> 32)) & 0x1f_ffff;
    v as u32
}

/// Interleaves three 21-bit coordinates into a 63-bit Morton code.
///
/// # Example
///
/// ```
/// use mesorasi_pointcloud::morton::{encode, decode};
/// let code = encode(3, 5, 7);
/// assert_eq!(decode(code), (3, 5, 7));
/// ```
#[inline]
pub fn encode(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x < (1 << BITS_PER_AXIS));
    debug_assert!(y < (1 << BITS_PER_AXIS));
    debug_assert!(z < (1 << BITS_PER_AXIS));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Recovers the three coordinates from a Morton code produced by [`encode`].
#[inline]
pub fn decode(code: u64) -> (u32, u32, u32) {
    (compact1by2(code), compact1by2(code >> 1), compact1by2(code >> 2))
}

/// Quantizes a point inside `bounds` to the Morton grid and encodes it.
pub fn code_for_point(p: Point3, bounds: &Aabb) -> u64 {
    let n = bounds.normalize(p);
    let max = ((1u32 << BITS_PER_AXIS) - 1) as f32;
    let q = |v: f32| -> u32 { (v * max) as u32 };
    encode(q(n.x), q(n.y), q(n.z))
}

/// Writes the Morton code of every point in `cloud` into `codes`,
/// reusing its capacity (the allocation-free core of [`sort_permutation`]).
///
/// An empty cloud leaves `codes` empty.
pub fn codes_into(cloud: &PointCloud, codes: &mut Vec<u64>) {
    codes.clear();
    let Some(bounds) = cloud.bounds() else {
        return;
    };
    codes.extend(cloud.points().iter().map(|&p| code_for_point(p, &bounds)));
}

/// [`sort_permutation`] with caller-owned scratch: `codes` and `order` are
/// cleared and refilled, so a warm loop pays no per-call allocation once
/// their capacities have grown to the cloud size. The permutation lands in
/// `order` and ties on equal codes break by ascending index, exactly like
/// the allocating variant's stable sort.
pub fn sort_permutation_into(cloud: &PointCloud, codes: &mut Vec<u64>, order: &mut Vec<usize>) {
    codes_into(cloud, codes);
    order.clear();
    if codes.is_empty() {
        return;
    }
    order.extend(0..cloud.len());
    order.sort_unstable_by_key(|&i| (codes[i], i));
}

/// [`sort_cloud`] with caller-owned scratch and output: the reordered cloud
/// lands in `out` (capacity reused), `codes`/`order` are the scratch of
/// [`sort_permutation_into`].
pub fn sort_cloud_into(
    cloud: &PointCloud,
    codes: &mut Vec<u64>,
    order: &mut Vec<usize>,
    out: &mut PointCloud,
) {
    sort_permutation_into(cloud, codes, order);
    cloud.select_into(order, out);
}

/// Returns the permutation that sorts `cloud` along the Morton curve.
///
/// An empty cloud yields an empty permutation.
pub fn sort_permutation(cloud: &PointCloud) -> Vec<usize> {
    let mut codes = Vec::new();
    let mut order = Vec::new();
    sort_permutation_into(cloud, &mut codes, &mut order);
    order
}

/// Reorders the cloud in place along the Morton curve so that spatially
/// nearby points get nearby indices.
pub fn sort_cloud(cloud: &PointCloud) -> PointCloud {
    let perm = sort_permutation(cloud);
    cloud.select(&perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn encode_decode_round_trip_exhaustive_small() {
        for x in 0..8 {
            for y in 0..8 {
                for z in 0..8 {
                    assert_eq!(decode(encode(x, y, z)), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode_decode_round_trip_random_large() {
        let mut rng = crate::seeded_rng(1);
        for _ in 0..1000 {
            let x = rng.gen_range(0..(1u32 << BITS_PER_AXIS));
            let y = rng.gen_range(0..(1u32 << BITS_PER_AXIS));
            let z = rng.gen_range(0..(1u32 << BITS_PER_AXIS));
            assert_eq!(decode(encode(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn morton_order_is_monotone_along_single_axis() {
        // Along one axis with others fixed, the Morton code is increasing.
        let mut prev = encode(0, 5, 9);
        for x in 1..100 {
            let c = encode(x, 5, 9);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn sort_cloud_improves_neighbor_index_locality() {
        // Points on a dense 3-D grid, shuffled; after Morton sorting, points
        // that are spatial neighbors should have much closer indices than in
        // the shuffled order.
        use rand::seq::SliceRandom;
        let mut pts = Vec::new();
        for x in 0..10 {
            for y in 0..10 {
                for z in 0..10 {
                    pts.push(Point3::new(x as f32, y as f32, z as f32));
                }
            }
        }
        let mut rng = crate::seeded_rng(3);
        pts.shuffle(&mut rng);
        let shuffled = PointCloud::from_points(pts);
        let sorted = sort_cloud(&shuffled);

        // Mean index distance between consecutive-in-space pairs.
        let mean_gap = |cloud: &PointCloud| -> f64 {
            let pts = cloud.points();
            let mut total = 0f64;
            let mut count = 0f64;
            for i in 0..pts.len() {
                // find index of the +x spatial neighbor, if present
                let target = pts[i] + Point3::new(1.0, 0.0, 0.0);
                if let Some(j) = pts.iter().position(|&q| q == target) {
                    total += (i as f64 - j as f64).abs();
                    count += 1.0;
                }
            }
            total / count
        };
        let gap_shuffled = mean_gap(&shuffled);
        let gap_sorted = mean_gap(&sorted);
        assert!(
            gap_sorted < gap_shuffled / 4.0,
            "morton sort should tighten index locality: sorted {gap_sorted} vs shuffled {gap_shuffled}"
        );
    }

    #[test]
    fn sort_permutation_empty_cloud() {
        assert!(sort_permutation(&PointCloud::new()).is_empty());
        let mut codes = vec![1, 2, 3];
        let mut order = vec![4, 5];
        sort_permutation_into(&PointCloud::new(), &mut codes, &mut order);
        assert!(codes.is_empty());
        assert!(order.is_empty());
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let mut rng = crate::seeded_rng(11);
        let pts: Vec<Point3> =
            (0..300).map(|_| Point3::new(rng.gen(), rng.gen(), rng.gen())).collect();
        // Duplicate a run of points so equal Morton codes exercise the
        // index tie-break.
        let pts: Vec<Point3> = pts.iter().chain(pts[..32].iter()).copied().collect();
        let cloud = PointCloud::from_points(pts);

        let mut codes = Vec::new();
        let mut order = Vec::new();
        let mut out = PointCloud::new();
        sort_cloud_into(&cloud, &mut codes, &mut order, &mut out);

        assert_eq!(order, sort_permutation(&cloud));
        assert!(out.content_eq(&sort_cloud(&cloud)));
        let bounds = cloud.bounds().expect("non-empty");
        let expect: Vec<u64> = cloud.points().iter().map(|&p| code_for_point(p, &bounds)).collect();
        assert_eq!(codes, expect);

        // Warm second call reuses capacity: no growth.
        let (cc, oc) = (codes.capacity(), order.capacity());
        sort_cloud_into(&cloud, &mut codes, &mut order, &mut out);
        assert_eq!((codes.capacity(), order.capacity()), (cc, oc));
    }

    #[test]
    fn sort_preserves_multiset_of_points() {
        let mut rng = crate::seeded_rng(9);
        let pts: Vec<Point3> =
            (0..256).map(|_| Point3::new(rng.gen(), rng.gen(), rng.gen())).collect();
        let cloud = PointCloud::from_points(pts.clone());
        let sorted = sort_cloud(&cloud);
        assert_eq!(sorted.len(), cloud.len());
        let mut a: Vec<_> = pts.iter().map(|p| p.to_array().map(f32::to_bits)).collect();
        let mut b: Vec<_> = sorted.iter().map(|p| p.to_array().map(f32::to_bits)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
