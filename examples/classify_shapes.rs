//! Scenario: shape classification — train a small PointNet++ on the
//! synthetic 40-class dataset (ModelNet40 stand-in), in both execution
//! orders, and compare accuracy. A miniature of the paper's Fig. 16.
//!
//! ```text
//! cargo run --release --example classify_shapes
//! ```

use mesorasi::networks::datasets;
use mesorasi::networks::pointnetpp::PointNetPP;
use mesorasi::nn::optim::{Adam, Optimizer};
use mesorasi::prelude::*;

fn train(strategy: Strategy, ds: &datasets::Dataset, classes: usize, epochs: usize) -> f64 {
    let mut rng = seeded_rng(11);
    let mut net = PointNetPP::classification_small(classes, &mut rng);
    let mut opt = Adam::new(5e-4);
    for epoch in 0..epochs {
        let mut total = 0.0f32;
        for (i, ex) in ds.train.iter().enumerate() {
            let cloud = ds.augmented_train_cloud(i, epoch as u64);
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, 7);
            let l = g.softmax_cross_entropy(out.logits, vec![ex.label]);
            total += g.value(l)[(0, 0)];
            g.backward(l);
            opt.step(&mut net.params_mut(), &g);
        }
        if epoch % 5 == 0 {
            println!(
                "  [{strategy}] epoch {epoch:>2}: mean loss {:.3}",
                total / ds.train.len() as f32
            );
        }
    }
    // Evaluate on held-out shapes: training is done, so the network moves
    // into an owned Session and the test set runs batched on the planned
    // inference engine (bit-identical to tape forwards).
    let session = SessionBuilder::from_network(net).strategy(strategy).seed(7).build();
    let clouds: Vec<&PointCloud> = ds.test.iter().map(|ex| &ex.cloud).collect();
    let correct = session
        .infer_batch(&clouds)
        .into_iter()
        .zip(&ds.test)
        .filter(|(out, ex)| {
            out.as_classification().expect("classification session").predicted() == ex.label
        })
        .count();
    correct as f64 / ds.test.len() as f64 * 100.0
}

fn main() {
    let classes = 5;
    let ds = datasets::classification(classes, 128, 12, 6, 5);
    println!(
        "training PointNet++ (small) on {} shapes, {} held out, {classes} classes\n",
        ds.train.len(),
        ds.test.len()
    );
    let acc_orig = train(Strategy::Original, &ds, classes, 20);
    let acc_delayed = train(Strategy::Delayed, &ds, classes, 20);
    println!("\ntest accuracy, original formulation: {acc_orig:.1}%");
    println!("test accuracy, delayed-aggregation:  {acc_delayed:.1}%");
    println!("delta: {:+.1}% (paper's full-scale band: −0.9% .. +1.2%)", acc_delayed - acc_orig);
}
