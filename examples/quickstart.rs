//! Quickstart: one PointNet++-style module under all three execution
//! strategies, plus a look at what the hardware models say about it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mesorasi::core::module::{Module, ModuleConfig, NeighborMode};
use mesorasi::core::{runner, NetworkTrace};
use mesorasi::nn::layers::NormMode;
use mesorasi::prelude::*;
use mesorasi::sim::soc::{simulate, Platform, SocConfig};
use mesorasi::tensor::ops;

fn main() {
    // A synthetic chair, normalized to the unit sphere — the ModelNet-style
    // input the paper's classification networks consume.
    let cloud = sample_shape(ShapeClass::Chair, 1024, 42);
    println!("input: {} points, bounds {:?}\n", cloud.len(), cloud.bounds().unwrap().extent());

    // The paper's running example (Fig. 3): 1024 → 512 points, K = 32,
    // shared MLP [3, 64, 64, 128].
    let mut rng = seeded_rng(0);
    let config = ModuleConfig::offset(
        "sa1",
        512,
        32,
        NeighborMode::CoordBall { radius: 0.2 },
        vec![3, 64, 64, 128],
    );
    let module = Module::new(config, NormMode::None, &mut rng);

    // Run the module under each strategy; identical neighbor structure.
    let mut outputs = Vec::new();
    for strategy in Strategy::ALL {
        let mut g = Graph::new();
        let state = runner::ModuleState::from_cloud(&mut g, &cloud);
        let out = runner::run_module(&mut g, &module, &state, strategy, 7);
        println!(
            "{strategy:>12}: MLP MACs = {:>11}, gather working set = {:>8} B",
            out.trace.mlp_macs(),
            out.trace.aggregate.as_ref().map_or(0, |a| a.working_set_bytes()),
        );
        outputs.push((strategy, g.value(out.state.features).clone(), out.trace));
    }

    // Ltd hoists only the linear part — exact. Delayed runs the whole MLP
    // early — approximate through ReLU (Equ. 3), recovered by training.
    let orig = &outputs[0].1;
    for (strategy, value, _) in &outputs[1..] {
        let diff = ops::sub(orig, value).max_abs();
        println!("max |{strategy} − original| = {diff:.6}");
    }

    // What the SoC models make of it: wrap each module trace as a one-module
    // network and compare platforms.
    println!();
    let cfg = SocConfig::default();
    for (strategy, _, trace) in &outputs {
        let mut net_trace = NetworkTrace::new("quickstart", *strategy);
        net_trace.modules.push(trace.clone());
        let platform = match strategy {
            Strategy::Original => Platform::GpuNpu,
            _ => Platform::MesorasiHw,
        };
        let sim = simulate(&net_trace, platform, &cfg);
        println!(
            "{strategy:>12} on {:<17}: {:.3} ms, {:.3} mJ",
            platform.label(),
            sim.total_ms(),
            sim.total_mj()
        );
    }

    // Serving a whole network is one owned, thread-safe Session: every
    // forward runs on the plan-and-execute engine, bit-identical to the
    // tape. See classify_shapes / segment_parts / lidar_detection for the
    // full train-then-serve loop.
    println!();
    let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
        .classes(10)
        .strategy(Strategy::Delayed)
        .build();
    let small = sample_shape(ShapeClass::Chair, session.network().input_points(), 42);
    let logits = session.infer(&small).into_classification();
    println!(
        "session over {} ({:?}): predicted class {} of {}",
        session.network().name(),
        session.domain(),
        logits.predicted(),
        logits.scores().len()
    );
}
