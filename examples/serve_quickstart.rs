//! Serve quickstart: stand up a mesorasi-serve server in-process, replay a
//! synthetic sensor stream at 30 Hz through the network client, and read
//! the latency + scheduler counters back.
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use mesorasi::prelude::*;
use mesorasi::serve::{replay, Client, Server, ServerConfig};
use std::sync::Arc;

fn main() {
    // A small classification session with a 2-engine pool; the same
    // builder knobs (paper_scale, sample_cache_cap, ...) apply.
    let session = Arc::new(
        SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
            .classes(10)
            .workers(2)
            .build(),
    );
    let n = session.network().input_points();

    // Bind an ephemeral port; `mesorasi-serve` is the standalone flavor.
    let server = Server::spawn(session, ServerConfig::default()).expect("bind server");
    println!("serving on {}", server.local_addr());

    // One lock-step request through the typed client.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let cloud = sample_shape(ShapeClass::Chair, n, 42);
    let inference = client.infer(0, &cloud).expect("inference");
    let logits = inference.as_classification().expect("classification domain");
    println!("remote inference: predicted class {}", logits.predicted());

    // A 30 Hz sensor replay: 60 frames, same shape size (batchable),
    // varied content. Every request gets a typed outcome — sheds are
    // reported, never silent.
    let frames: Vec<_> = (0..60).map(|i| sample_shape(ShapeClass::Car, n, i)).collect();
    let report = replay(server.local_addr(), &frames, 30.0).expect("replay");
    println!(
        "replayed {} frames in {:.2}s: {} ok, {} shed, p50 {:.2} ms, p99 {:.2} ms",
        report.sent,
        report.elapsed.as_secs_f64(),
        report.ok,
        report.shed,
        report.latency_quantile_us(0.50).unwrap_or(0) as f64 / 1000.0,
        report.latency_quantile_us(0.99).unwrap_or(0) as f64 / 1000.0,
    );

    let stats = client.stats().expect("stats");
    println!(
        "server counters: {} served over {} dispatches ({} shed, {} malformed); \
         NIT cache {} hits / {} misses / {} evictions",
        stats.served,
        stats.batches,
        stats.shed,
        stats.malformed,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
    );
    server.shutdown();
}
