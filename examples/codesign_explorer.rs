//! Scenario: architecture co-design — explore the Aggregation Unit and
//! systolic-array design space for one network and print the
//! latency/energy/area frontier, the loop an SoC architect would run with
//! this library.
//!
//! ```text
//! cargo run --release --example codesign_explorer
//! ```

use mesorasi::bench::Context;
use mesorasi::prelude::*;
use mesorasi::sim::area;
use mesorasi::sim::au::AuConfig;
use mesorasi::sim::npu::NpuConfig;
use mesorasi::sim::soc::{simulate, Platform, SocConfig};

fn main() {
    let kind = NetworkKind::PointNetPPClassification;
    println!("building the {} delayed-aggregation trace...", kind.name());
    let ctx = Context::new();
    let del = ctx.trace(kind, Strategy::Delayed);
    let orig = ctx.trace(kind, Strategy::Original);

    println!("\n== systolic array size vs Mesorasi-HW gain =====================");
    println!("{:>8} {:>12} {:>12} {:>10}", "SA", "baseline ms", "mesorasi ms", "speedup");
    for sa in [8usize, 16, 32, 48] {
        let cfg = SocConfig {
            npu: NpuConfig { rows: sa, cols: sa, ..NpuConfig::default() },
            ..SocConfig::default()
        };
        let baseline = simulate(&orig, Platform::GpuNpu, &cfg);
        let hw = simulate(&del, Platform::MesorasiHw, &cfg);
        println!(
            "{:>5}x{:<2} {:>12.2} {:>12.2} {:>9.2}x",
            sa,
            sa,
            baseline.total_ms(),
            hw.total_ms(),
            hw.speedup_vs(&baseline)
        );
    }

    println!("\n== AU buffer sizing: energy vs area =============================");
    println!(
        "{:>8} {:>8} {:>12} {:>12} {:>10}",
        "PFT KB", "NIT KB", "AU mJ", "AU mm^2", "partitions"
    );
    for (pft, nit) in [(16usize, 6usize), (32, 12), (64, 12), (128, 24), (256, 96)] {
        let au = AuConfig { pft_kb: pft, nit_kb: nit, ..AuConfig::default() };
        let mj: f64 = del.aggregations().map(|a| au.simulate(a).total_mj()).sum();
        let parts = del.aggregations().map(|a| au.simulate(a).partitions).max().unwrap_or(1);
        println!("{pft:>8} {nit:>8} {:>12.4} {:>12.3} {parts:>10}", mj, area::au_area(&au).total());
    }

    println!("\nnominal design (64 KB / 12 KB) balances energy against area,");
    println!("matching the paper's sizing argument in Sec. VII-F.");
}
