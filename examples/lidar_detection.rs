//! Scenario: LiDAR detection — ray-cast a street scene (KITTI stand-in),
//! crop frustums around objects, and run the F-PointNet pipeline on them,
//! reporting workload numbers and (after a short training run) the BEV IoU
//! detection metric.
//!
//! ```text
//! cargo run --release --example lidar_detection
//! ```

use mesorasi::bench::training::{evaluate_detector, split_frustums, train_detector, TrainConfig};
use mesorasi::networks::datasets;
use mesorasi::networks::fpointnet::FPointNet;
use mesorasi::pointcloud::lidar::{generate_scene, LidarConfig};
use mesorasi::prelude::*;

fn main() {
    // One sweep of the simulated spinning LiDAR.
    let config = LidarConfig::small();
    let scene = generate_scene(&config, 5, 3);
    let labels = scene.cloud.labels().expect("scenes are labelled");
    let object_returns = labels.iter().filter(|&&l| l > 0).count();
    println!(
        "scene: {} returns from {} rays; {} object returns across {} objects",
        scene.cloud.len(),
        config.rays_per_frame(),
        object_returns,
        scene.objects.len()
    );

    // Frustum dataset across several scenes.
    let frustums = datasets::frustums(10, 128, 5);
    println!("extracted {} frustum examples (128 points each)\n", frustums.len());
    let (train, test) = split_frustums(frustums, 0.25);

    // Workload look: what one frustum costs the pipeline, per strategy.
    let mut rng = seeded_rng(11);
    let probe = FPointNet::small(&mut rng);
    for strategy in [Strategy::Original, Strategy::Delayed] {
        let mut g = Graph::new();
        let det = probe.forward_detection(&mut g, &train[0].cloud, strategy, 7);
        println!(
            "{strategy:>9}: {} modules traced, {} MLP MACs",
            det.trace.modules.len(),
            det.trace.mlp_macs()
        );
    }

    // Short training run (segmentation + box regression jointly).
    println!("\ntraining the pipeline ({} train / {} test frustums)...", train.len(), test.len());
    let mut rng = seeded_rng(11);
    let mut net = FPointNet::small(&mut rng);
    let cfg = TrainConfig { epochs: 30, ..TrainConfig::default() };
    let before = evaluate_detector(&net, &test, Strategy::Delayed, 7);
    let after = train_detector(&mut net, &train, &test, Strategy::Delayed, cfg);
    println!("geo-mean BEV IoU before training: {before:.1}%");
    println!("geo-mean BEV IoU after training:  {after:.1}%");
    // Regression guard: this metric sat at a degenerate 0% for several
    // releases (object returns were diluted out of the frustums before the
    // detector ever saw them). Training at the default scale must produce a
    // strictly positive detection score — on every class, since the
    // geometric mean zeroes out if any class does.
    assert!(after > 0.0, "post-training BEV IoU must be strictly positive, got {after}%");
    assert!(
        after > before,
        "training must improve the detector (before {before}%, after {after}%)"
    );

    // Serving the trained detector: the pipeline moves into an owned
    // Session and each frustum comes back as a domain-typed Boxes3D — no
    // raw-matrix special case for detection.
    let session = SessionBuilder::from_network(net).strategy(Strategy::Delayed).seed(7).build();
    let boxes = session.infer(&test[0].cloud).into_detection();
    let object_points = boxes.mask_labels().iter().filter(|&&l| l == 1).count();
    let (cx, cy, w, h) = boxes.bev_box(Point3::ORIGIN);
    println!(
        "\nsession probe on one frustum: {object_points}/{} points masked as object,",
        test[0].cloud.len()
    );
    println!("BEV box (origin-anchored): center ({cx:.2}, {cy:.2}), size {w:.2} x {h:.2}");
}
