//! Scenario: part segmentation — train the PointNet++ segmentation variant
//! (set abstraction down, feature propagation back up) on part-labelled
//! synthetic shapes and report mIoU, the paper's ShapeNet metric.
//!
//! ```text
//! cargo run --release --example segment_parts
//! ```

use mesorasi::networks::datasets;
use mesorasi::networks::pointnetpp::PointNetPP;
use mesorasi::nn::metrics::ConfusionMatrix;
use mesorasi::nn::optim::{Adam, Optimizer};
use mesorasi::prelude::*;

fn main() {
    let (ds, categories, parts) = datasets::segmentation(3, 128, 10, 4, 5);
    println!("categories:");
    for c in &categories {
        println!(
            "  {:<10} parts {}..{}",
            c.class.name(),
            c.part_offset,
            c.part_offset + c.part_count - 1
        );
    }
    println!(
        "{} train / {} test instances, {} part labels total\n",
        ds.train.len(),
        ds.test.len(),
        parts
    );

    let mut rng = seeded_rng(11);
    let mut net = PointNetPP::segmentation_small(parts as usize, &mut rng);
    let mut opt = Adam::new(5e-4);
    let strategy = Strategy::Delayed;
    for epoch in 0..32 {
        let mut total = 0.0f32;
        for (i, _) in ds.train.iter().enumerate() {
            let cloud = ds.augmented_train_cloud(i, epoch);
            let labels = cloud.labels().expect("labelled").to_vec();
            let mut g = Graph::new();
            let out = net.forward(&mut g, &cloud, strategy, 7);
            let l = g.softmax_cross_entropy(out.logits, labels);
            total += g.value(l)[(0, 0)];
            g.backward(l);
            opt.step(&mut net.params_mut(), &g);
        }
        if epoch % 4 == 0 {
            println!("epoch {epoch:>2}: mean loss {:.3}", total / ds.train.len() as f32);
        }
    }

    // Per-point evaluation with the confusion matrix → mIoU; the trained
    // network moves into an owned Session and the test set runs batched.
    let session = SessionBuilder::from_network(net).strategy(strategy).seed(7).build();
    let clouds: Vec<&PointCloud> = ds.test.iter().map(|ex| &ex.cloud).collect();
    let mut cm = ConfusionMatrix::new(parts as usize);
    for (out, ex) in session.infer_batch(&clouds).into_iter().zip(&ds.test) {
        cm.record(&out.into_segmentation().labels(), ex.cloud.labels().unwrap());
    }
    println!("\nper-class IoU:");
    for (part, iou) in cm.per_class_iou().iter().enumerate() {
        if let Some(iou) = iou {
            println!("  part {part:>2}: {:.1}%", iou * 100.0);
        }
    }
    println!("\nmIoU ({strategy}): {:.1}%", cm.mean_iou() * 100.0);
}
