//! Mesorasi — algorithm-architecture co-design for point cloud analytics.
//!
//! A from-scratch reproduction of *"Mesorasi: Architecture Support for
//! Point Cloud Analytics via Delayed-Aggregation"* (MICRO 2020): the
//! delayed-aggregation algorithm, the seven evaluated networks, a
//! trainable autograd substrate, analytical hardware models, and a
//! production-shaped inference surface.
//!
//! # Inference in three lines
//!
//! The front door is [`Session`]: an owned, `Send + Sync`,
//! lifetime-free handle over one frozen network that serves
//! [`Session::infer`], [`Session::infer_batch`] (data-parallel over a
//! per-worker engine pool), and [`Session::infer_stream`], returning
//! domain-typed results ([`Logits`], [`PerPointLabels`], [`Boxes3D`])
//! that are bit-identical to the autograd tape at every thread count.
//!
//! ```
//! use mesorasi::prelude::*;
//!
//! let session = SessionBuilder::from_kind(NetworkKind::PointNetPPClassification)
//!     .classes(10)
//!     .strategy(Strategy::Delayed)
//!     .build();
//! let cloud = sample_shape(ShapeClass::Chair, session.network().input_points(), 1);
//! let class = session.infer(&cloud).into_classification().predicted();
//! assert!(class < 10);
//! ```
//!
//! # Workspace map
//!
//! Each `mesorasi_*` crate is re-exported under a short name; see the
//! README for the full table.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

// `bench` is a real (not dev) dependency so examples and downstream code
// reach the training loops and experiment drivers through one namespace;
// the whole workspace is offline path deps, so the extra compile surface
// only matters to out-of-tree consumers, who can depend on subcrates.
pub use mesorasi_bench as bench;
pub use mesorasi_core as core;
pub use mesorasi_knn as knn;
pub use mesorasi_networks as networks;
pub use mesorasi_nn as nn;
pub use mesorasi_par as par;
pub use mesorasi_pointcloud as pointcloud;
pub use mesorasi_serve as serve;
pub use mesorasi_sim as sim;
pub use mesorasi_tensor as tensor;

// The curated top level: the session-first inference API and the handful
// of types almost every caller touches.
pub use mesorasi_core::Strategy;
pub use mesorasi_knn::{SearchBackend, SearchPlanner};
pub use mesorasi_networks::{
    Boxes3D, Domain, FrameStream, Inference, Logits, NetworkKind, PerPointLabels,
    PointCloudNetwork, Session, SessionBuilder,
};
pub use mesorasi_pointcloud::{seeded_rng, PointCloud};
pub use mesorasi_tensor::Dtype;

/// One-stop imports for the common inference and training workflow.
///
/// ```
/// use mesorasi::prelude::*;
/// ```
pub mod prelude {
    pub use crate::{
        seeded_rng, Boxes3D, Domain, Dtype, FrameStream, Inference, Logits, NetworkKind,
        PerPointLabels, PointCloud, PointCloudNetwork, SearchBackend, Session, SessionBuilder,
        Strategy,
    };
    pub use mesorasi_nn::Graph;
    pub use mesorasi_pointcloud::shapes::{sample_shape, ShapeClass};
    pub use mesorasi_pointcloud::Point3;
}
