//! Mesorasi — algorithm-architecture co-design for point cloud analytics.
//!
//! Facade crate re-exporting the workspace. See the README for the map.

pub use mesorasi_core as core;
pub use mesorasi_knn as knn;
pub use mesorasi_networks as networks;
pub use mesorasi_nn as nn;
pub use mesorasi_par as par;
pub use mesorasi_pointcloud as pointcloud;
pub use mesorasi_sim as sim;
pub use mesorasi_tensor as tensor;
